"""Streaming, mmap-backed trace store — the ``IRISTRC2`` format.

The legacy ``IRISTRC1`` layout (:meth:`repro.core.seed.Trace.save`)
materializes every record in RAM, issues four small writes plus a JSON
metrics encode per record, and decodes the whole file eagerly on load.
That is fine for the paper's 5000-exit traces and hopeless for the
multi-million-exit recordings the §VI-D memory analysis assumes — the
reason rr's trace format ("Engineering Record And Replay For
Deployability", PAPERS.md) is append-only, indexed, and lazily mapped.

``IRISTRC2`` follows that design::

    header   b"IRISTRC2" | <H workload_len | workload bytes
    payload  per record: seed blob (batched codec) + metrics blob
             (struct-packed binary, below) — appended in flush batches
    names    <I count | per name: <H len | utf-8 bytes
             (interned coverage file names, ordered by id)
    index    per record: <QIIH = offset, seed_len, metrics_len,
             exit_reason — the file's random-access map
    trailer  <QQQ names_off, index_off, record_count | b"IRISIDX2"

The binary metrics blob replaces the per-record JSON::

    <H vmwrite_count | vmwrite_count x <HQ (field index, value)
    <I coverage_count | coverage_count x <II (name id, line), line-major order
    <QQ handler_cycles, guest_cycles

Two entry points:

* :class:`TraceWriter` — the streaming producer.  ``append()`` spools
  records into a bounded batch; every ``flush_every`` records the
  batch is encoded and written through buffered I/O, so recording
  memory is O(flush batch), not O(trace) (the index rides along at 18
  bytes/record).  :class:`~repro.core.record.Recorder` uses it for
  spool mode (``iris record --spool``).
* :class:`TraceReader` — the lazy consumer.  The file is mmapped once;
  ``len()``, ``reasons()`` and ``reason_histogram()`` are answered
  from the footer index without touching a single payload byte (the
  ``stats.records_decoded`` counter proves it), and ``records[i]``
  decodes exactly one record, zero-copy, on access.

:func:`open_trace` dispatches on the magic so every consumer accepts
both formats; ``Trace.load()`` keeps its fully-materialized contract
and auto-detects ``IRISTRC2`` files.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field as dataclass_field
from functools import lru_cache
from pathlib import Path
from typing import Protocol, Union, runtime_checkable

from repro.arch.fields import ALL_FIELDS, field_by_index, field_index
from repro.core.seed import (
    ExitMetrics,
    Trace,
    VMExitRecord,
    VMSeed,
)
from repro.errors import SeedFormatError
from repro.vmx.exit_reasons import ExitReason, reason_name

MAGIC = b"IRISTRC2"
TRAILER_MAGIC = b"IRISIDX2"

#: Default records per flush batch — the spool-mode memory bound.
DEFAULT_FLUSH_EVERY = 256

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_CYCLES = struct.Struct("<QQ")
#: One index entry: payload offset, seed length, metrics length,
#: 16-bit exit reason (the same value the seed blob's header carries).
_INDEX_ENTRY = struct.Struct("<QIIH")
_TRAILER = struct.Struct("<QQQ8s")

_VALUE_MASK = (1 << 64) - 1


@runtime_checkable
class TraceLike(Protocol):
    """What every trace consumer actually needs.

    Satisfied by the in-RAM :class:`~repro.core.seed.Trace` and by the
    lazy :class:`TraceReader`, so replay, the fuzzer's planner, the
    minimizer, and the analysis modules take either interchangeably.
    """

    @property
    def workload(self) -> str: ...

    @property
    def records(self) -> Sequence[VMExitRecord]: ...

    def __len__(self) -> int: ...

    def seeds(self) -> list[VMSeed]: ...

    def reasons(self) -> list[ExitReason]: ...

    def reason_histogram(self) -> dict[str, int]: ...

    def total_guest_cycles(self) -> int: ...

    def cumulative_coverage(self) -> list[int]: ...


# ---- binary metrics codec --------------------------------------------


@lru_cache(maxsize=1024)
def _vmwrites_struct(count: int) -> struct.Struct:
    return struct.Struct("<" + "HQ" * count)


@lru_cache(maxsize=1024)
def _coverage_struct(count: int) -> struct.Struct:
    return struct.Struct("<" + "II" * count)


# Pack-side variant that fuses the whole blob — vmwrite count and
# pairs, coverage count and pairs, cycle pair — into one struct call.
# Each coverage pair is packed as one ``<Q`` of ``line << 32 | id``:
# little-endian, that is byte-for-byte the documented ``<II`` (id,
# line) pair, but sorting and splatting plain ints is much cheaper
# than tuple pairs.  Record shapes repeat heavily across a trace, so
# the cache hits every time.
@lru_cache(maxsize=4096)
def _metrics_pack_struct(
    n_writes: int, n_coverage: int
) -> struct.Struct:
    return struct.Struct(
        "<H" + "HQ" * n_writes + "I" + "Q" * n_coverage + "QQ"
    )


# One flush batch's index entries, packed in a single call.  Batches
# are almost always exactly ``flush_every`` records, so this caches.
@lru_cache(maxsize=64)
def _index_batch_struct(count: int) -> struct.Struct:
    return struct.Struct("<" + "QIIH" * count)


#: Hot-path copy of the compact field numbering: metrics packing is
#: the per-record inner loop of spool-mode recording, and the direct
#: member lookup skips :func:`field_index`'s enum re-coercion.
_FIELD_INDEX: dict[object, int] = {
    f: i for i, f in enumerate(ALL_FIELDS)
}


def pack_metrics(
    metrics: ExitMetrics, name_table: dict[str, int]
) -> bytes:
    """Encode one record's metrics against a shared name table.

    ``name_table`` interns coverage file names in first-seen order
    (new names are interned in sorted-name order); the writer
    serializes the table once into the footer.  Coverage pairs are
    packed in ascending (line, interned id) order, so the encoding of
    a given trace is byte-deterministic regardless of set iteration
    order.
    """
    writes = metrics.vmwrites
    n_writes = len(writes)
    if n_writes > 0xFFFF:
        raise SeedFormatError(
            f"too many vmwrites to encode: {n_writes}"
        )
    try:
        cov_keys = [
            line << 32 | name_table[name]
            for name, line in metrics.coverage_lines
        ]
    except KeyError:
        # First sighting of a file name: intern in sorted-name order
        # so id assignment never depends on set iteration order.
        cov_keys = []
        for name, line in sorted(metrics.coverage_lines):
            name_id = name_table.get(name)
            if name_id is None:
                name_id = len(name_table)
                if name_id > 0xFFFFFFFF:
                    raise SeedFormatError(
                        "coverage name table overflow"
                    )
                name_table[name] = name_id
            cov_keys.append(line << 32 | name_id)
    cov_keys.sort()
    packer = _metrics_pack_struct(n_writes, len(cov_keys))
    field_ids = _FIELD_INDEX
    try:
        # Fast path: known enum fields, everything already in range.
        # A raw-int field raises KeyError; an out-of-range value (the
        # codec masks to 64 bits) or coverage line (the shifted key
        # overflows 64 bits) raises struct.error — both land in the
        # validating pass below.
        wflat = [
            x for f, v in writes for x in (field_ids[f], v)
        ]
        return packer.pack(
            n_writes, *wflat, len(cov_keys), *cov_keys,
            metrics.handler_cycles, metrics.guest_cycles,
        )
    except (KeyError, struct.error):
        pass
    wflat = []
    for f, v in writes:
        wflat.append(field_index(f))
        wflat.append(v & _VALUE_MASK)
    try:
        return packer.pack(
            n_writes, *wflat, len(cov_keys), *cov_keys,
            metrics.handler_cycles & _VALUE_MASK,
            metrics.guest_cycles & _VALUE_MASK,
        )
    except struct.error as exc:
        raise SeedFormatError(
            "coverage line outside the 32-bit range"
        ) from exc


def unpack_metrics(
    raw: bytes | memoryview, names: Sequence[str]
) -> ExitMetrics:
    """Decode one binary metrics blob (zero-copy over a view).

    Same hardening contract as the seed codec: truncation anywhere,
    trailing bytes, an out-of-range field index or name id — all raise
    :class:`SeedFormatError` at parse time.
    """
    view = raw if type(raw) is memoryview else memoryview(raw)

    def need(offset: int, count: int) -> None:
        if len(view) - offset < count:
            raise SeedFormatError("truncated metrics blob")

    need(0, _U16.size)
    (n_writes,) = _U16.unpack_from(view, 0)
    offset = _U16.size
    vmwrites: list[tuple[object, int]] = []
    if n_writes:
        writes_struct = _vmwrites_struct(n_writes)
        need(offset, writes_struct.size)
        flat = writes_struct.unpack_from(view, offset)
        offset += writes_struct.size
        try:
            vmwrites = [
                (field_by_index(flat[i]), flat[i + 1])
                for i in range(0, 2 * n_writes, 2)
            ]
        except ValueError as exc:
            raise SeedFormatError(f"bad metrics blob: {exc}") from exc
    need(offset, _U32.size)
    (n_coverage,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    coverage: frozenset[tuple[str, int]] = frozenset()
    if n_coverage:
        coverage_struct = _coverage_struct(n_coverage)
        need(offset, coverage_struct.size)
        flat = coverage_struct.unpack_from(view, offset)
        offset += coverage_struct.size
        try:
            coverage = frozenset(
                (names[flat[i]], flat[i + 1])
                for i in range(0, 2 * n_coverage, 2)
            )
        except IndexError:
            raise SeedFormatError(
                "bad metrics blob: coverage name id outside the "
                "interned name table"
            ) from None
    need(offset, _CYCLES.size)
    handler_cycles, guest_cycles = _CYCLES.unpack_from(view, offset)
    offset += _CYCLES.size
    if offset != len(view):
        raise SeedFormatError("trailing bytes after metrics blob")
    return ExitMetrics(
        vmwrites=vmwrites,  # type: ignore[arg-type]
        coverage_lines=coverage,
        handler_cycles=handler_cycles,
        guest_cycles=guest_cycles,
    )


# ---- the streaming writer --------------------------------------------


@dataclass
class TraceWriterStats:
    """Spool-mode bookkeeping (the §VI-D memory-bound evidence)."""

    records_written: int = 0
    flushes: int = 0
    #: High-water mark of records held in RAM at once — the spool-mode
    #: memory bound is ``peak_buffered_records <= flush_every``.
    peak_buffered_records: int = 0
    payload_bytes: int = 0


class TraceWriter:
    """Append-only streaming producer of ``IRISTRC2`` files.

    Records spool into a bounded in-memory batch; every
    ``flush_every`` appends the batch is encoded and written through
    one buffered write.  ``close()`` (or the context manager) flushes
    the tail and writes the name table, index, and trailer — until
    then the file on disk is a prefix, not a valid trace.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike[str]],
        workload: str = "",
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.workload = workload
        self.flush_every = flush_every
        self.stats = TraceWriterStats()
        self._fh: io.BufferedWriter | None = open(self.path, "wb")
        name = workload.encode()
        if len(name) > 0xFFFF:
            raise SeedFormatError(
                f"workload name too long to encode: {len(name)} bytes"
            )
        self._fh.write(MAGIC + _U16.pack(len(name)) + name)
        self._offset = len(MAGIC) + _U16.size + len(name)
        self._pending: list[VMExitRecord] = []
        self._index = bytearray()
        self._names: dict[str, int] = {}

    # -- lifecycle --

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._fh is None

    def append(self, record: VMExitRecord) -> None:
        """Spool one record; encodes + writes when the batch fills."""
        if self._fh is None:
            raise SeedFormatError("trace writer is closed")
        self._pending.append(record)
        if len(self._pending) > self.stats.peak_buffered_records:
            self.stats.peak_buffered_records = len(self._pending)
        if len(self._pending) >= self.flush_every:
            self.flush()

    def extend(self, records: Sequence[VMExitRecord]) -> None:
        """Spool many records, flushing batch by batch.

        Equivalent to calling :meth:`append` per record but skips the
        per-record bookkeeping — the bulk entry point for
        :func:`write_trace`'s v1-to-v2 streaming.
        """
        if self._fh is None:
            raise SeedFormatError("trace writer is closed")
        pending = self._pending
        position = 0
        total = len(records)
        while position < total:
            take = self.flush_every - len(pending)
            pending.extend(records[position:position + take])
            position += take
            if len(pending) > self.stats.peak_buffered_records:
                self.stats.peak_buffered_records = len(pending)
            if len(pending) >= self.flush_every:
                self.flush()

    def flush(self) -> None:
        """Encode and write the pending batch (one buffered write)."""
        if self._fh is None:
            raise SeedFormatError("trace writer is closed")
        if not self._pending:
            return
        chunks: list[bytes] = []
        index_flat: list[int] = []
        names = self._names
        offset = self._offset
        for record in self._pending:
            seed_blob = record.seed.pack()
            metrics_blob = pack_metrics(record.metrics, names)
            index_flat += (
                offset, len(seed_blob), len(metrics_blob),
                record.seed.exit_reason & 0xFFFF,
            )
            offset += len(seed_blob) + len(metrics_blob)
            chunks.append(seed_blob)
            chunks.append(metrics_blob)
        self._index += _index_batch_struct(
            len(self._pending)
        ).pack(*index_flat)
        blob = b"".join(chunks)
        self._fh.write(blob)
        self.stats.payload_bytes += len(blob)
        self.stats.records_written += len(self._pending)
        self.stats.flushes += 1
        self._offset = offset
        self._pending.clear()

    def close(self) -> None:
        """Flush the tail and seal the file (names, index, trailer)."""
        if self._fh is None:
            return
        self.flush()
        names_off = self._offset
        name_parts = [_U32.pack(len(self._names))]
        for name in self._names:  # insertion order == id order
            encoded = name.encode()
            if len(encoded) > 0xFFFF:
                raise SeedFormatError(
                    f"coverage file name too long: {len(encoded)} bytes"
                )
            name_parts.append(_U16.pack(len(encoded)))
            name_parts.append(encoded)
        names_blob = b"".join(name_parts)
        index_off = names_off + len(names_blob)
        count = self.stats.records_written
        self._fh.write(names_blob)
        self._fh.write(bytes(self._index))
        self._fh.write(_TRAILER.pack(
            names_off, index_off, count, TRAILER_MAGIC
        ))
        self._fh.close()
        self._fh = None


def write_trace(
    trace: TraceLike,
    path: Union[str, os.PathLike[str]],
    flush_every: int = DEFAULT_FLUSH_EVERY,
) -> TraceWriterStats:
    """Stream an existing trace out as ``IRISTRC2``."""
    with TraceWriter(
        path, workload=trace.workload, flush_every=flush_every
    ) as writer:
        writer.extend(trace.records)
    return writer.stats


# ---- the lazy reader -------------------------------------------------


@dataclass
class TraceReaderStats:
    """Laziness evidence: how much payload a consumer actually paid."""

    #: Records whose payload bytes were decoded.  Index-only queries
    #: (``len``, ``reasons``, ``reason_histogram``) leave this at 0.
    records_decoded: int = 0


class _LazyRecords(Sequence[VMExitRecord]):
    """The ``.records`` view over a reader: decodes on access only."""

    __slots__ = ("_reader",)

    def __init__(self, reader: "TraceReader") -> None:
        self._reader = reader

    def __len__(self) -> int:
        return len(self._reader)

    def __getitem__(self, item):  # type: ignore[override]
        return self._reader[item]

    def __iter__(self) -> Iterator[VMExitRecord]:
        return iter(self._reader)


class TraceReader(Sequence[VMExitRecord]):
    """mmap-backed lazy view of an ``IRISTRC2`` trace file.

    Opening parses only the trailer, name table, and index (18
    bytes/record); record payloads stay untouched until indexed into.
    The reader satisfies the :class:`TraceLike` protocol, so it drops
    into every ``Trace`` consumer: replay iterates it, the fuzzer's
    planner answers seed selection from ``reasons()`` without decoding
    a payload byte, and slicing ``records[:k]`` decodes exactly ``k``
    records.
    """

    def __init__(self, path: Union[str, os.PathLike[str]]) -> None:
        self.path = Path(path)
        self.stats = TraceReaderStats()
        self._fh = open(self.path, "rb")
        try:
            try:
                self._mm: mmap.mmap | None = mmap.mmap(
                    self._fh.fileno(), 0, access=mmap.ACCESS_READ
                )
            except ValueError:
                raise SeedFormatError(
                    "not an IRIS trace file (empty file)"
                ) from None
            self._view = memoryview(self._mm)
            self._parse()
        except BaseException:
            self.close()
            raise
        self._records = _LazyRecords(self)

    # -- layout parsing --

    def _parse(self) -> None:
        view = self._view
        if bytes(view[:8]) != MAGIC:
            raise SeedFormatError("not an IRISTRC2 trace file")
        if len(view) < 8 + _U16.size:
            raise SeedFormatError("truncated trace header")
        (name_len,) = _U16.unpack_from(view, 8)
        header_end = 8 + _U16.size + name_len
        if len(view) < header_end:
            raise SeedFormatError("truncated trace header")
        try:
            self.workload = bytes(view[10:header_end]).decode()
        except UnicodeDecodeError as exc:
            raise SeedFormatError(
                f"bad workload name: {exc}"
            ) from exc
        if len(view) < header_end + _TRAILER.size:
            raise SeedFormatError("truncated trace trailer")
        names_off, index_off, count, tail = _TRAILER.unpack_from(
            view, len(view) - _TRAILER.size
        )
        if tail != TRAILER_MAGIC:
            raise SeedFormatError(
                "truncated trace trailer (bad trailer magic — "
                "was the writer closed?)"
            )
        index_end = len(view) - _TRAILER.size
        if not (
            header_end <= names_off <= index_off <= index_end
        ):
            raise SeedFormatError("bad trace trailer offsets")
        if index_end - index_off != count * _INDEX_ENTRY.size:
            raise SeedFormatError("truncated trace index")
        self._payload_end = names_off
        self._names = self._parse_names(names_off, index_off)
        if count:
            self._index = struct.unpack_from(
                "<" + "QIIH" * count, view, index_off
            )
        else:
            self._index = ()
        self._count = count

    def _parse_names(self, start: int, end: int) -> tuple[str, ...]:
        view = self._view

        def need(offset: int, count: int) -> None:
            if end - offset < count:
                raise SeedFormatError("truncated trace name table")

        need(start, _U32.size)
        (n_names,) = _U32.unpack_from(view, start)
        offset = start + _U32.size
        names: list[str] = []
        for _ in range(n_names):
            need(offset, _U16.size)
            (length,) = _U16.unpack_from(view, offset)
            offset += _U16.size
            need(offset, length)
            try:
                names.append(bytes(view[offset:offset + length]).decode())
            except UnicodeDecodeError as exc:
                raise SeedFormatError(
                    f"bad trace name table: {exc}"
                ) from exc
            offset += length
        if offset != end:
            raise SeedFormatError(
                "trailing bytes after trace name table"
            )
        return tuple(names)

    # -- lifecycle --

    def close(self) -> None:
        view = getattr(self, "_view", None)
        if view is not None:
            view.release()
            self._view = None  # type: ignore[assignment]
        mm = getattr(self, "_mm", None)
        if mm is not None:
            mm.close()
            self._mm = None
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering
        try:
            self.close()
        except Exception:
            pass

    # -- index-only queries (zero payload bytes) --

    def __len__(self) -> int:
        return self._count

    @property
    def records(self) -> Sequence[VMExitRecord]:
        return self._records

    def reason_ints(self) -> list[int]:
        """Raw 16-bit exit reasons, straight from the index."""
        return list(self._index[3::4])

    def reasons(self) -> list[ExitReason]:
        return [ExitReason(r) for r in self._index[3::4]]

    def reason_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for reason in self._index[3::4]:
            name = reason_name(reason)
            histogram[name] = histogram.get(name, 0) + 1
        return histogram

    # -- lazy record access --

    def _decode(self, index: int) -> VMExitRecord:
        view = self._view
        if view is None:
            raise SeedFormatError("trace reader is closed")
        base = 4 * index
        offset = self._index[base]
        seed_len = self._index[base + 1]
        metrics_len = self._index[base + 2]
        end = offset + seed_len + metrics_len
        if end > self._payload_end:
            raise SeedFormatError("bad trace index entry")
        seed = VMSeed.from_bytes(view[offset:offset + seed_len])
        metrics = unpack_metrics(
            view[offset + seed_len:end], self._names
        )
        self.stats.records_decoded += 1
        return VMExitRecord(seed=seed, metrics=metrics)

    def __getitem__(self, item):  # type: ignore[override]
        if isinstance(item, slice):
            return [
                self._decode(i)
                for i in range(*item.indices(self._count))
            ]
        index = item
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(
                f"record index {item} outside trace of "
                f"{self._count} records"
            )
        return self._decode(index)

    def __iter__(self) -> Iterator[VMExitRecord]:
        for i in range(self._count):
            yield self._decode(i)

    # -- Trace API parity (payload-decoding paths) --

    def seeds(self) -> list[VMSeed]:
        return [record.seed for record in self]

    def total_guest_cycles(self) -> int:
        return sum(record.metrics.guest_cycles for record in self)

    def cumulative_coverage(self) -> list[int]:
        seen: set[tuple[str, int]] = set()
        trajectory = []
        for record in self:
            seen |= record.metrics.coverage_lines
            trajectory.append(len(seen))
        return trajectory

    def materialize(self) -> Trace:
        """Decode everything into an in-RAM :class:`Trace`."""
        return Trace(workload=self.workload, records=list(self))


def open_trace(
    path: Union[str, os.PathLike[str]],
) -> Union[Trace, TraceReader]:
    """Open a trace file in its cheapest faithful form.

    ``IRISTRC2`` files come back as a lazy :class:`TraceReader`;
    legacy ``IRISTRC1`` files load through the (hardened)
    :meth:`Trace.load` path, byte-equivalently to before.  Both
    results satisfy :class:`TraceLike`.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
    if magic == MAGIC:
        return TraceReader(path)
    return Trace.load(path)


__all__ = [
    "DEFAULT_FLUSH_EVERY",
    "MAGIC",
    "TRAILER_MAGIC",
    "TraceLike",
    "TraceReader",
    "TraceReaderStats",
    "TraceWriter",
    "TraceWriterStats",
    "open_trace",
    "pack_metrics",
    "unpack_metrics",
    "write_trace",
]
