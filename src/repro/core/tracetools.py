"""Trace manipulation utilities: slice, filter, merge, stats, diff.

Recorded VM behaviors are the fuzzer's raw material; these helpers are
the corpus-management layer a downstream user needs around the binary
trace files — cutting a boot prefix, isolating one exit reason's
seeds, combining recordings, and comparing two behaviors.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.core.seed import Trace, VMExitRecord
from repro.core.tracestore import TraceLike
from repro.vmx.exit_reasons import ExitReason


def slice_trace(trace: TraceLike, start: int = 0,
                stop: int | None = None) -> Trace:
    """A new trace holding records ``[start:stop]``."""
    return Trace(
        workload=trace.workload,
        records=list(trace.records[start:stop]),
    )


def filter_by_reason(
    trace: TraceLike, reasons: set[ExitReason] | list[ExitReason]
) -> Trace:
    """Keep only the seeds with one of the given exit reasons."""
    wanted = {ExitReason(r) for r in reasons}
    return Trace(
        workload=trace.workload,
        records=[
            record for record in trace.records
            if record.seed.reason in wanted
        ],
    )


def merge_traces(traces: list[TraceLike],
                 workload: str = "") -> Trace:
    """Concatenate several recordings into one behavior."""
    if not traces:
        raise ValueError("nothing to merge")
    records: list[VMExitRecord] = []
    for trace in traces:
        records.extend(trace.records)
    return Trace(
        workload=workload or "+".join(t.workload for t in traces),
        records=records,
    )


@dataclass
class TraceStats:
    """Summary statistics of one recorded behavior."""

    workload: str
    exits: int
    reasons: dict[str, int]
    seed_bytes_min: int
    seed_bytes_max: int
    seed_bytes_mean: float
    vmcs_reads_mean: float
    vmwrites_mean: float
    unique_loc: int
    guest_cycles: int
    handler_cycles: int

    def rows(self) -> list[tuple[str, object]]:
        return [
            ("workload", self.workload),
            ("exits", self.exits),
            ("unique LOC covered", self.unique_loc),
            ("seed size (min/mean/max B)",
             f"{self.seed_bytes_min}/{self.seed_bytes_mean:.0f}/"
             f"{self.seed_bytes_max}"),
            ("VMCS reads per seed (mean)",
             f"{self.vmcs_reads_mean:.1f}"),
            ("VMWRITEs per seed (mean)", f"{self.vmwrites_mean:.1f}"),
            ("guest cycles", f"{self.guest_cycles:,}"),
            ("handler cycles", f"{self.handler_cycles:,}"),
        ]


def trace_stats(trace: TraceLike) -> TraceStats:
    """Compute summary statistics for a trace."""
    if not trace.records:
        return TraceStats(
            workload=trace.workload, exits=0, reasons={},
            seed_bytes_min=0, seed_bytes_max=0, seed_bytes_mean=0.0,
            vmcs_reads_mean=0.0, vmwrites_mean=0.0, unique_loc=0,
            guest_cycles=0, handler_cycles=0,
        )
    sizes = [record.seed.size_bytes() for record in trace.records]
    reads = [
        len(record.seed.vmcs_reads()) for record in trace.records
    ]
    writes = [
        len(record.metrics.vmwrites) for record in trace.records
    ]
    lines: set[tuple[str, int]] = set()
    for record in trace.records:
        lines |= record.metrics.coverage_lines
    return TraceStats(
        workload=trace.workload,
        exits=len(trace),
        reasons=trace.reason_histogram(),
        seed_bytes_min=min(sizes),
        seed_bytes_max=max(sizes),
        seed_bytes_mean=statistics.mean(sizes),
        vmcs_reads_mean=statistics.mean(reads),
        vmwrites_mean=statistics.mean(writes),
        unique_loc=len(lines),
        guest_cycles=trace.total_guest_cycles(),
        handler_cycles=sum(
            record.metrics.handler_cycles
            for record in trace.records
        ),
    )


@dataclass
class TraceDiff:
    """Comparison of two recorded behaviors."""

    reasons_only_in_a: dict[str, int] = field(default_factory=dict)
    reasons_only_in_b: dict[str, int] = field(default_factory=dict)
    reason_deltas: dict[str, int] = field(default_factory=dict)
    loc_only_in_a: int = 0
    loc_only_in_b: int = 0
    loc_shared: int = 0

    @property
    def coverage_jaccard(self) -> float:
        union = self.loc_only_in_a + self.loc_only_in_b + \
            self.loc_shared
        if union == 0:
            return 1.0
        return self.loc_shared / union


def diff_traces(a: TraceLike, b: TraceLike) -> TraceDiff:
    """Compare exit-reason mixes and coverage of two behaviors."""
    hist_a = a.reason_histogram()
    hist_b = b.reason_histogram()
    diff = TraceDiff()
    for name in set(hist_a) | set(hist_b):
        count_a = hist_a.get(name, 0)
        count_b = hist_b.get(name, 0)
        if count_a and not count_b:
            diff.reasons_only_in_a[name] = count_a
        elif count_b and not count_a:
            diff.reasons_only_in_b[name] = count_b
        elif count_a != count_b:
            diff.reason_deltas[name] = count_b - count_a

    lines_a: set[tuple[str, int]] = set()
    for record in a.records:
        lines_a |= record.metrics.coverage_lines
    lines_b: set[tuple[str, int]] = set()
    for record in b.records:
        lines_b |= record.metrics.coverage_lines
    diff.loc_shared = len(lines_a & lines_b)
    diff.loc_only_in_a = len(lines_a - lines_b)
    diff.loc_only_in_b = len(lines_b - lines_a)
    return diff
