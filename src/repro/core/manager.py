"""The IRIS manager (paper §IV-C / §V-C).

Owns the operation modes (record / replay / both), the test VM and the
dummy VM, and the ``xc_vmcs_fuzzing`` hypercall backend through which
the user-space CLI drives everything.  The replay-while-recording mode
(a recorder attached to the dummy VM) is what the accuracy evaluation
uses: it stores metrics for replayed seeds so they can be compared
against the recorded ones.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass

from repro.core.record import Recorder
from repro.core.replay import Replayer, SeedReplayResult
from repro.core.seed import Trace, VMSeed
from repro.core.tracestore import TraceLike, TraceReader
from repro.core.snapshot import (
    VmSnapshot,
    restore_snapshot,
    take_snapshot,
)
from repro.errors import IrisError
from repro.guest.bios import bios_ops
from repro.guest.machine import GuestMachine
from repro.guest.minios import kernel_boot_ops
from repro.guest.workloads import Workload, build_workload
from repro.hypervisor.domain import Domain, DomainType
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.vcpu import Vcpu
from repro.hypervisor.hypercalls import (
    EINVAL,
    XC_VMCS_FUZZING_NR,
    XcVmcsFuzzingOp,
)
from repro.obs import OBS
from repro.vmx.ept import EptTables
from repro.x86.msr import MsrFile
from repro.x86.registers import RegisterFile


class IrisMode(enum.Flag):
    """Active operation modes (paper §IV-C)."""

    OFF = 0
    RECORD = enum.auto()
    REPLAY = enum.auto()


@dataclass
class RecordingSession:
    """Result of one recording run.

    ``trace`` is the in-RAM :class:`Trace` normally, or a lazy
    :class:`TraceReader` over the sealed spool file when the session
    recorded with ``spool_to`` — both satisfy :class:`TraceLike`.
    """

    trace: TraceLike
    snapshot: VmSnapshot
    wall_cycles: int
    wall_seconds: float
    machine_stats: object
    recorder_stats: object


@dataclass
class ReplaySession:
    """Result of replaying a trace through the dummy VM."""

    results: list[SeedReplayResult]
    wall_cycles: int
    wall_seconds: float
    #: seeds that replayed without crashing
    completed: int = 0
    #: The §IV-C record-while-replay product: a metrics-only trace
    #: collected by the recorder that ran alongside the replayer
    #: (None when ``record_metrics=False``).
    metrics_trace: Trace | None = None

    @property
    def crashed(self) -> bool:
        return self.completed < len(self.results)

    def throughput_exits_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds


class IrisManager:
    """Front-end for recording and replaying VM behaviors."""

    def __init__(
        self, hv: Hypervisor | None = None, arch: str = "vmx",
        fast_reset: bool = True,
    ) -> None:
        """``arch`` picks the virtualization backend ("vmx"/"svm") when
        no pre-built hypervisor is supplied; with ``hv`` given, the
        hypervisor's own backend wins.  ``fast_reset`` lets
        :meth:`create_dummy_vm` reset an existing dummy VM in place
        instead of destroying and re-creating a domain per test case
        (the §VI-C throughput lever); ``False`` forces the original
        full-rebuild behavior."""
        self.hv = hv or Hypervisor(arch=arch)
        self.arch = self.hv.arch
        self.fast_reset = fast_reset
        self.dom0 = self.hv.create_domain(
            DomainType.DOM0, name="Domain-0"
        )
        self.mode = IrisMode.OFF
        self.test_vm: Domain | None = None
        self.test_machine: GuestMachine | None = None
        self.dummy_vm: Domain | None = None
        self.replayer: Replayer | None = None
        self._recorder: Recorder | None = None
        self.hv.hypercalls.register(
            XC_VMCS_FUZZING_NR, self._xc_vmcs_fuzzing
        )

    # ---- hypercall backend -------------------------------------------

    def _xc_vmcs_fuzzing(self, vcpu, args: tuple[int, int, int]) -> int:
        """The xc_vmcs_fuzzing backend driver (paper §V-C).

        Returns 0 on success, -EINVAL on unknown sub-operations (which
        fuzzed guests reach with garbage RDI values).
        """
        try:
            op = XcVmcsFuzzingOp(args[0])
        except ValueError:
            return EINVAL
        if op is XcVmcsFuzzingOp.ENABLE_RECORD:
            self.mode |= IrisMode.RECORD
        elif op is XcVmcsFuzzingOp.DISABLE_RECORD:
            self.mode &= ~IrisMode.RECORD
        elif op is XcVmcsFuzzingOp.ENABLE_REPLAY:
            self.mode |= IrisMode.REPLAY
        elif op is XcVmcsFuzzingOp.DISABLE_REPLAY:
            self.mode &= ~IrisMode.REPLAY
        elif op is XcVmcsFuzzingOp.STATUS:
            return self.mode.value
        # FETCH_SEEDS / FETCH_METRICS / SUBMIT_SEED move data through
        # the shared-memory area; the Python API exposes them directly
        # as record_workload()/replay_trace().
        return 0

    # ---- VM management ----------------------------------------------

    def create_test_vm(
        self, name: str = "test-vm", machine_seed: int = 0
    ) -> GuestMachine:
        """Create the DomU whose behavior will be recorded."""
        import random

        self.test_vm = self.hv.create_domain(DomainType.HVM, name=name)
        self.test_vm.populate_identity_map(64)
        self.test_machine = GuestMachine(
            self.hv, self.test_vm, rng=random.Random(machine_seed)
        )
        return self.test_machine

    def create_dummy_vm(
        self, from_snapshot: VmSnapshot | None = None,
        name: str = "dummy-vm",
    ) -> Replayer:
        """Create (or fast-reset) the dummy VM used for replay.

        With :attr:`fast_reset` on, an existing dummy VM is reset in
        place rather than destroyed and re-created — the domain, its
        vCPU and its device models survive, only their state is rewound
        to ``from_snapshot``.  Either way the old replayer is detached
        *before* the old domain goes away, so its exit hook never
        outlives the vCPU it observes.
        """
        if self.replayer is not None:
            self.replayer.detach()
            self.replayer = None
        if (
            self.fast_reset
            and self.dummy_vm is not None
            and from_snapshot is not None
            and self.dummy_vm.name == name
        ):
            vcpu = self._reset_dummy_vm(from_snapshot)
        else:
            if self.dummy_vm is not None:
                self.hv.destroy_domain(self.dummy_vm)
            self.dummy_vm = self.hv.create_domain(
                DomainType.HVM, name=name, is_dummy=True
            )
            vcpu = self.dummy_vm.vcpus[0]
            if from_snapshot is not None:
                vcpu = restore_snapshot(
                    self.hv, self.dummy_vm, from_snapshot
                )
        self.replayer = Replayer(self.hv, vcpu)
        return self.replayer

    def _reset_dummy_vm(self, from_snapshot: VmSnapshot) -> Vcpu:
        """Rewind the existing dummy VM to ``from_snapshot`` in place.

        The scrub below reproduces what a freshly created domain hands
        to ``restore_snapshot``: pristine register/MSR files (the
        restore deliberately leaves segments and DR7 alone), empty
        guest memory and EPT, and a logical CPU parked in host context.
        The stamp is dropped because the scrub happens behind the
        write sets' back — the restore must run its full path.
        """
        domain = self.dummy_vm
        assert domain is not None
        vcpu = domain.vcpus[0]
        vcpu.regs = RegisterFile()
        vcpu.msrs = MsrFile()
        domain.memory.drop_all()
        domain.ept = EptTables(eptp=0x7000 + domain.domid)
        vcpu.backend.park_cpu(vcpu)
        domain.restore_stamp = None
        return restore_snapshot(self.hv, domain, from_snapshot)

    # ---- record mode --------------------------------------------------

    def record_workload(
        self,
        workload: Workload | str,
        n_exits: int = 5000,
        precondition: str | None = "bios",
        store_seeds: bool = True,
        store_metrics: bool = True,
        workload_seed: int = 0,
        spool_to: str | os.PathLike[str] | None = None,
    ) -> RecordingSession:
        """Run a workload on the test VM and record its VM behavior.

        ``precondition`` fast-forwards the test VM without recording:
        ``"bios"`` runs the firmware phase (the paper's OS BOOT trace
        starts after the last BIOS exit); ``"boot"`` additionally runs
        the whole kernel boot (CPU-/MEM-/I/O-bound and IDLE execute on
        a booted OS).

        ``spool_to`` streams records to an ``IRISTRC2`` file as they
        arrive (bounded recording memory); the returned session's
        ``trace`` is then a lazy :class:`TraceReader` over the sealed
        file instead of an in-RAM :class:`Trace`.
        """
        if isinstance(workload, str):
            workload = build_workload(workload, seed=workload_seed)
        with OBS.tracer.span(
            "iris.record", workload=workload.name, arch=self.arch,
            n_exits=n_exits,
        ):
            session = self._record_workload(
                workload, n_exits=n_exits, precondition=precondition,
                store_seeds=store_seeds, store_metrics=store_metrics,
                spool_to=spool_to,
            )
        if OBS.metrics.enabled:
            OBS.metrics.inc("sessions", kind="record", arch=self.arch)
        return session

    def _record_workload(
        self,
        workload: Workload,
        n_exits: int,
        precondition: str | None,
        store_seeds: bool,
        store_metrics: bool,
        spool_to: str | os.PathLike[str] | None = None,
    ) -> RecordingSession:
        machine = self.test_machine or self.create_test_vm()
        machine.launch()

        if precondition in ("bios", "boot"):
            machine.run(bios_ops(machine.rng, scale=1))
        elif precondition not in (None, "none"):
            raise IrisError(f"unknown precondition {precondition!r}")
        if precondition == "boot":
            machine.run(kernel_boot_ops(machine.rng))

        snapshot = take_snapshot(self.hv, machine.domain)
        recorder = Recorder(
            self.hv, machine.vcpu, workload=workload.name,
            store_seeds=store_seeds, store_metrics=store_metrics,
            max_records=n_exits, spool_to=spool_to,
        )
        self._recorder = recorder
        self.mode |= IrisMode.RECORD
        recorder.start()
        start = self.hv.clock.now
        try:
            workload.run(machine, max_exits=n_exits)
        finally:
            recorder.stop()
            recorder.detach()
            recorder.close_spool()
            self.mode &= ~IrisMode.RECORD
        wall = self.hv.clock.now - start
        trace: TraceLike = (
            TraceReader(spool_to) if spool_to is not None
            else recorder.trace
        )
        return RecordingSession(
            trace=trace,
            snapshot=snapshot,
            wall_cycles=wall,
            wall_seconds=self.hv.clock.seconds(wall),
            machine_stats=machine.stats,
            recorder_stats=recorder.stats,
        )

    def park_test_vm(self, exits: int = 10) -> int:
        """Keep the test VM in an idle loop between recording sessions.

        Paper §IV-C: "the IRIS manager allows keeping the test VM in an
        idle loop, ready for a new recording session."  Runs a short
        HLT/RDTSC idle burst with no recorder attached; returns the
        exits the parked VM delivered.
        """
        from repro.guest.ops import GuestOp, OpKind

        machine = self.test_machine or self.create_test_vm()
        machine.launch()

        def idle_ops():
            while True:
                yield GuestOp(OpKind.RDTSC, cycles=20_000)
                yield GuestOp(OpKind.PAUSE, cycles=10_000)

        return machine.run(idle_ops(), max_exits=exits)

    # ---- replay mode ------------------------------------------------

    def replay_trace(
        self,
        trace: TraceLike,
        from_snapshot: VmSnapshot | None = None,
        record_metrics: bool = True,
        fresh_dummy: bool = True,
        stop_on_crash: bool = True,
    ) -> ReplaySession:
        """Replay a recorded VM behavior through the dummy VM.

        With ``record_metrics`` the recorder runs alongside the replayer
        ("the replay mode together with the record mode enabled to store
        metrics while replaying", §IV-C); its per-seed coverage and
        VMWRITE observations are attached to the returned results.
        """
        with OBS.tracer.span(
            "iris.replay", workload=trace.workload, arch=self.arch,
            seeds=len(trace),
        ):
            session = self._replay_trace(
                trace, from_snapshot=from_snapshot,
                record_metrics=record_metrics,
                fresh_dummy=fresh_dummy, stop_on_crash=stop_on_crash,
            )
        if OBS.metrics.enabled:
            OBS.metrics.inc("sessions", kind="replay", arch=self.arch)
        return session

    def _replay_trace(
        self,
        trace: TraceLike,
        from_snapshot: VmSnapshot | None,
        record_metrics: bool,
        fresh_dummy: bool,
        stop_on_crash: bool,
    ) -> ReplaySession:
        if fresh_dummy or self.replayer is None:
            self.create_dummy_vm(from_snapshot=from_snapshot)
        assert self.replayer is not None
        replayer = self.replayer
        self.mode |= IrisMode.REPLAY

        recorder = None
        if record_metrics:
            recorder = Recorder(
                self.hv, replayer.vcpu, workload=trace.workload,
                store_seeds=False, store_metrics=True,
            )
            replayer.attach()  # replayer hook must precede the recorder
            recorder.start()

        start = self.hv.clock.now
        try:
            results = replayer.replay_trace(
                trace, stop_on_crash=stop_on_crash
            )
        finally:
            if recorder is not None:
                recorder.stop()
                recorder.detach()
            self.mode &= ~IrisMode.REPLAY
        wall = self.hv.clock.now - start
        completed = sum(
            1 for r in results
            if r.outcome.value == "ok"
        )
        return ReplaySession(
            results=results,
            wall_cycles=wall,
            wall_seconds=self.hv.clock.seconds(wall),
            completed=completed,
            metrics_trace=(
                recorder.trace if recorder is not None else None
            ),
        )

    def submit_seed(self, seed: VMSeed) -> SeedReplayResult:
        """Submit one (possibly crafted/mutated) seed on demand."""
        if self.replayer is None:
            self.create_dummy_vm()
        assert self.replayer is not None
        self.mode |= IrisMode.REPLAY
        try:
            return self.replayer.submit(seed)
        finally:
            self.mode &= ~IrisMode.REPLAY
