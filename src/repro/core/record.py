"""The IRIS recording component (paper §IV-A / §V-A).

Attaches to the hypervisor's instrumentation seams:

* at handler entry (``on_exit_start``) the callback buffers the 15
  hypervisor-saved GPRs into the pre-allocated seed area;
* the instrumented ``vmread()``/``vmwrite()`` wrappers buffer VMCS
  ``{field, value}`` pairs (reads into the seed, writes into metrics);
* at handler end the per-exit coverage and the TSC delta are latched.

Recording cost is charged to the simulated clock (``record_base`` +
``record_entry`` per buffered entry), which is exactly the overhead
Fig. 10 measures.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.seed import (
    ExitMetrics,
    MAX_VMCS_OPS_PER_EXIT,
    SeedEntry,
    SeedFlag,
    Trace,
    VMExitRecord,
    VMSeed,
    WORST_CASE_SEED_BYTES,
)
from repro.core.tracestore import DEFAULT_FLUSH_EVERY, TraceWriter
from repro.hypervisor.dispatch import NullHooks
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.vcpu import Vcpu
from repro.obs import OBS
from repro.vmx.exit_reasons import ExitReason
from repro.arch.fields import ArchField
from repro.x86.registers import GPR


@dataclass
class RecorderStats:
    """Bookkeeping for tests and the §VI-D memory-overhead analysis."""

    exits_recorded: int = 0
    entries_buffered: int = 0
    vmcs_ops_dropped: int = 0  # beyond the 32-op pre-allocated area
    max_vmcs_ops_seen: int = 0
    preallocated_bytes: int = 0


class Recorder(NullHooks):
    """Collects VM seeds and metrics for one target vCPU."""

    def __init__(
        self,
        hv: Hypervisor,
        target: Vcpu,
        workload: str = "",
        store_seeds: bool = True,
        store_metrics: bool = True,
        max_records: int | None = None,
        spool_to: str | os.PathLike[str] | None = None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        """``spool_to`` switches on bounded-memory recording: records
        stream straight into an ``IRISTRC2`` :class:`TraceWriter` at
        that path (flushed every ``flush_every`` exits) instead of
        accumulating in :attr:`trace`, so recording memory is O(flush
        batch) regardless of trace length (paper §VI-D).  Call
        :meth:`close_spool` (or rely on the manager) to seal the file.
        """
        self.hv = hv
        self.target = target
        self.trace = Trace(workload=workload)
        self.store_seeds = store_seeds
        self.store_metrics = store_metrics
        self.max_records = max_records
        self.stats = RecorderStats()
        self.writer: TraceWriter | None = (
            TraceWriter(
                spool_to, workload=workload, flush_every=flush_every
            )
            if spool_to is not None else None
        )
        self.enabled = False
        self._attached = False
        # per-exit scratch state
        self._recording_exit = False
        self._entries: list[SeedEntry] = []
        self._vmwrites: list[tuple[ArchField, int]] = []
        self._vmcs_ops = 0
        self._exit_reason: int = 0
        self._exit_start_tsc = 0

    # ---- lifecycle -----------------------------------------------

    def attach(self) -> None:
        if not self._attached:
            self.hv.add_hook(self)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.hv.remove_hook(self)
            self._attached = False

    def start(self) -> None:
        self.attach()
        self.enabled = True

    def stop(self) -> None:
        self.enabled = False
        self._recording_exit = False

    def close_spool(self) -> None:
        """Seal the spool file (flush tail + footer).  No-op without
        spool mode or when already closed."""
        if self.writer is not None and not self.writer.closed:
            self.writer.close()

    @property
    def spooling(self) -> bool:
        return self.writer is not None

    @property
    def done(self) -> bool:
        return (
            self.max_records is not None
            and self.stats.exits_recorded >= self.max_records
        )

    # ---- hook implementation ---------------------------------------

    def _is_target(self, vcpu: Vcpu) -> bool:
        return vcpu is self.target

    def on_exit_start(self, vcpu: Vcpu) -> None:
        if not self.enabled or not self._is_target(vcpu) or self.done:
            return
        self._recording_exit = True
        self._entries = []
        self._vmwrites = []
        self._vmcs_ops = 0
        self._exit_start_tsc = self.hv.clock.now
        # The pre-allocated per-exit seed area (paper §VI-D).
        self.stats.preallocated_bytes += WORST_CASE_SEED_BYTES
        # Buffer the hypervisor-saved GPRs.
        self.hv.clock.charge("record_base")
        if self.store_seeds:
            for reg in GPR:
                self._entries.append(SeedEntry.for_gpr(
                    reg, vcpu.regs.read_gpr(reg)
                ))
            self.hv.clock.charge("record_entry", times=len(GPR))
            self.stats.entries_buffered += len(GPR)

    def _vmcs_ops_buffered(self) -> int:
        """VMCS ops buffered so far this exit (non-GPR seed entries
        plus pending vmwrites).  Maintained incrementally — the old
        implementation rescanned the whole entry list on every
        vmread/vmwrite, turning a 32-op exit into an O(ops²) walk."""
        return self._vmcs_ops

    def on_vmread(self, vcpu: Vcpu, fld: ArchField, value: int) -> int:
        if self._recording_exit and self._is_target(vcpu):
            if fld is ArchField.VM_EXIT_REASON and not self._exit_reason:
                self._exit_reason = value
            if self.store_seeds:
                if self._vmcs_ops < MAX_VMCS_OPS_PER_EXIT:
                    self._entries.append(SeedEntry.for_vmcs(
                        SeedFlag.VMCS_READ, fld, value
                    ))
                    self._vmcs_ops += 1
                    self.hv.clock.charge("record_entry")
                    self.stats.entries_buffered += 1
                else:
                    self.stats.vmcs_ops_dropped += 1
                    if OBS.metrics.enabled:
                        OBS.metrics.inc("vmcs_ops_dropped", op="read")
        return value

    def on_vmwrite(self, vcpu: Vcpu, fld: ArchField, value: int) -> None:
        if self._recording_exit and self._is_target(vcpu):
            if self.store_metrics:
                if self._vmcs_ops < MAX_VMCS_OPS_PER_EXIT:
                    self._vmwrites.append((fld, value))
                    self._vmcs_ops += 1
                    self.hv.clock.charge("record_entry")
                    self.stats.entries_buffered += 1
                else:
                    self.stats.vmcs_ops_dropped += 1
                    if OBS.metrics.enabled:
                        OBS.metrics.inc("vmcs_ops_dropped", op="write")

    def on_exit_end(self, vcpu: Vcpu, reason: ExitReason) -> None:
        if not self._recording_exit or not self._is_target(vcpu):
            return
        self._recording_exit = False
        self.stats.max_vmcs_ops_seen = max(
            self.stats.max_vmcs_ops_seen, self._vmcs_ops
        )
        seed = VMSeed(
            exit_reason=self._exit_reason or int(reason),
            entries=self._entries,
        )
        event = self.hv.current_event
        metrics = ExitMetrics(
            vmwrites=self._vmwrites if self.store_metrics else [],
            coverage_lines=(
                self.hv.exit_coverage.lines()
                if self.store_metrics else frozenset()
            ),
            handler_cycles=self.hv.clock.now - self._exit_start_tsc,
            guest_cycles=event.guest_cycles if event else 0,
        )
        record = VMExitRecord(seed=seed, metrics=metrics)
        if self.writer is not None:
            self.writer.append(record)
        else:
            self.trace.records.append(record)
        self.stats.exits_recorded += 1
        if OBS.metrics.enabled:
            OBS.metrics.inc("exits_recorded", reason=reason.name)
            OBS.metrics.inc("seed_bytes", value=seed.size_bytes())
            OBS.metrics.observe("seed_size_bytes", seed.size_bytes())
        self._exit_reason = 0
        if self.done:
            self.enabled = False
