"""``iris`` command-line interface (the paper's user-space CLI, §IV-C).

Sub-commands::

    iris workloads                     list available workloads
    iris record  -w cpu-bound -o t.iris   record a trace
    iris inspect t.iris                summarize a trace file
    iris replay  t.iris                replay a trace on a dummy VM
    iris evaluate -w cpu-bound         record+replay accuracy report
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    coverage_fitting,
    render_histogram,
    render_table,
    vmwrite_fitting,
)
from repro.arch.backend import BACKEND_NAMES
from repro.core.manager import IrisManager
from repro.core.tracestore import open_trace
from repro.guest.workloads import WorkloadName
from repro.obs.cliobs import add_obs_options, cli_observability


def _add_record_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-w", "--workload", required=True,
        choices=[w.value for w in WorkloadName],
        help="workload to run on the test VM",
    )
    parser.add_argument(
        "-n", "--exits", type=int, default=5000,
        help="VM exits to record (paper default: 5000)",
    )
    parser.add_argument(
        "-p", "--precondition",
        choices=["none", "bios", "boot"], default=None,
        help="fast-forward the test VM before recording "
             "(default: bios for os-boot, boot otherwise)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload RNG seed"
    )
    _add_arch_option(parser)


def _add_arch_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arch", choices=list(BACKEND_NAMES), default="vmx",
        help="virtualization backend to run on (paper §IX: the "
             "record/replay mechanism is architecture-neutral)",
    )


def _resolve_precondition(args) -> str:
    if args.precondition is not None:
        return args.precondition
    return "bios" if args.workload in ("os-boot", "full-boot") else "boot"


def _cmd_workloads(_args) -> int:
    rows = [(w.value,) for w in WorkloadName]
    print(render_table(["workload"], rows, title="Available workloads"))
    return 0


def _cmd_record(args) -> int:
    with cli_observability(args):
        manager = IrisManager(arch=args.arch)
        session = manager.record_workload(
            args.workload, n_exits=args.exits,
            precondition=_resolve_precondition(args),
            workload_seed=args.seed,
            spool_to=args.output if args.spool else None,
        )
    if not args.spool:
        session.trace.save(args.output)
    print(f"recorded {len(session.trace)} exits "
          f"({session.wall_seconds:.3f} simulated s) -> {args.output}")
    # With --spool this histogram is answered from the trace file's
    # footer index alone — no record payload is decoded.
    print(render_histogram(session.trace.reason_histogram(),
                           title="Exit reasons"))
    return 0


def _cmd_inspect(args) -> int:
    trace = open_trace(args.trace)
    sizes = [s.size_bytes() for s in trace.seeds()]
    print(f"workload: {trace.workload}")
    print(f"records:  {len(trace)}")
    if sizes:
        print(f"seed size: min={min(sizes)} max={max(sizes)} bytes")
    print(render_histogram(trace.reason_histogram(),
                           title="Exit reasons"))
    return 0


def _cmd_stats(args) -> int:
    from repro.core.tracetools import trace_stats

    trace = open_trace(args.trace)
    stats = trace_stats(trace)
    print(render_table(["metric", "value"], stats.rows(),
                       title=f"Trace statistics: {args.trace}"))
    print(render_histogram(stats.reasons, title="Exit reasons"))
    return 0


def _cmd_diff(args) -> int:
    from repro.core.tracetools import diff_traces

    a = open_trace(args.trace_a)
    b = open_trace(args.trace_b)
    diff = diff_traces(a, b)
    rows = [
        ("coverage Jaccard", f"{diff.coverage_jaccard:.3f}"),
        ("LOC only in A", diff.loc_only_in_a),
        ("LOC only in B", diff.loc_only_in_b),
        ("LOC shared", diff.loc_shared),
    ]
    rows += [
        (f"reason only in A: {name}", count)
        for name, count in diff.reasons_only_in_a.items()
    ]
    rows += [
        (f"reason only in B: {name}", count)
        for name, count in diff.reasons_only_in_b.items()
    ]
    rows += [
        (f"reason delta: {name}", f"{delta:+d}")
        for name, delta in diff.reason_deltas.items()
    ]
    print(render_table(
        ["comparison", "value"], rows,
        title=f"{args.trace_a} vs {args.trace_b}",
    ))
    return 0


def _cmd_svm_export(args) -> int:
    from repro.svm import translate_trace

    trace = open_trace(args.trace)
    report = translate_trace(trace)
    rows = [
        ("seeds translated",
         f"{len(report.seeds)}/{len(trace)}"),
        ("entries translated", report.translated_entries),
        ("entries dropped (VT-x-only)", report.dropped_entries),
        ("entry coverage", f"{report.entry_coverage_pct:.1f}%"),
    ]
    rows += [
        (f"dropped field: {field.name}", count)
        for field, count in sorted(
            report.dropped_fields.items(), key=lambda kv: -kv[1]
        )
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"SVM/VMCB translation: {args.trace} (paper §IX)",
    ))
    return 0


def _cmd_replay(args) -> int:
    trace = open_trace(args.trace)
    with cli_observability(args):
        manager = IrisManager(arch=args.arch)
        session = manager.replay_trace(trace)
    print(f"replayed {session.completed}/{len(session.results)} seeds "
          f"in {session.wall_seconds:.3f} simulated s "
          f"({session.throughput_exits_per_second():.0f} exits/s)")
    if session.crashed:
        last = session.results[-1]
        print(f"replay stopped: {last.crash_reason}")
        print("hint: workloads recorded on a booted OS need the boot "
              "state first (paper §VI-B, 'bad RIP for mode 0')")
    return 0


def _cmd_evaluate(args) -> int:
    with cli_observability(args):
        manager = IrisManager(arch=args.arch)
        session = manager.record_workload(
            args.workload, n_exits=args.exits,
            precondition=_resolve_precondition(args),
            workload_seed=args.seed,
        )
        replay = manager.replay_trace(
            session.trace, from_snapshot=session.snapshot
        )
    fitting = coverage_fitting(session.trace, replay.results)
    writes = vmwrite_fitting(session.trace, replay.results)
    rows = [
        ("exits recorded", len(session.trace)),
        ("exits replayed", replay.completed),
        ("real execution (s)", f"{session.wall_seconds:.3f}"),
        ("IRIS replay (s)", f"{replay.wall_seconds:.3f}"),
        ("speedup", f"{session.wall_seconds / max(replay.wall_seconds, 1e-12):.1f}x"),
        ("coverage fitting", f"{fitting.fitting_pct:.1f}%"),
        ("VMWRITE fitting", f"{writes.fitting_pct:.1f}%"),
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"IRIS evaluation: {args.workload}",
    ))
    return 0


def _cmd_trace(args) -> int:
    """Inspect observability artifacts (DESIGN.md §7).

    Auto-detects the file kind: a metrics-snapshot JSON (one object
    with ``counters``/``histograms``) renders the campaign flight
    recorder; a JSONL event trace renders event tallies and span
    durations.
    """
    import json

    from repro.obs import (
        MetricsSnapshot,
        flight_summary,
        load_trace_events,
        summarize_trace_events,
    )

    with open(args.file, "r", encoding="utf-8") as fh:
        first = fh.readline().strip()
    if not first:
        print(f"{args.file}: empty observability file", file=sys.stderr)
        return 1
    try:
        payload = json.loads(first)
    except json.JSONDecodeError:
        print(f"{args.file}: not an observability JSON/JSONL file",
              file=sys.stderr)
        return 1
    if isinstance(payload, dict) and (
        "counters" in payload or "histograms" in payload
    ):
        snapshot = MetricsSnapshot.from_json(first)
        print(flight_summary(snapshot, top_n=args.top))
    else:
        events = load_trace_events(args.file)
        print(summarize_trace_events(events, top_n=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="iris",
        description="IRIS record/replay framework (DSN'23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list workloads")

    record = sub.add_parser("record", help="record a VM behavior")
    _add_record_options(record)
    record.add_argument("-o", "--output", required=True,
                        help="trace file to write")
    record.add_argument(
        "--spool", action="store_true",
        help="stream records to OUTPUT as they arrive (IRISTRC2 "
             "format, bounded recording memory) instead of "
             "materializing the trace in RAM first",
    )
    add_obs_options(record)

    inspect = sub.add_parser("inspect", help="summarize a trace file")
    inspect.add_argument("trace")

    stats = sub.add_parser("stats", help="detailed trace statistics")
    stats.add_argument("trace")

    diff = sub.add_parser("diff", help="compare two trace files")
    diff.add_argument("trace_a")
    diff.add_argument("trace_b")

    svm = sub.add_parser(
        "svm-export",
        help="translate a trace onto AMD SVM's VMCB (paper §IX)",
    )
    svm.add_argument("trace")

    replay = sub.add_parser("replay", help="replay a trace file")
    replay.add_argument("trace")
    _add_arch_option(replay)
    add_obs_options(replay)

    evaluate = sub.add_parser(
        "evaluate", help="record + replay + accuracy report"
    )
    _add_record_options(evaluate)
    add_obs_options(evaluate)

    trace = sub.add_parser(
        "trace",
        help="summarize an observability trace (JSONL) or metrics "
             "snapshot (JSON) written by --trace/--metrics",
    )
    trace.add_argument("file", help="JSONL event trace or metrics JSON")
    trace.add_argument("--top", type=int, default=10,
                       help="rows per summary table")
    return parser


_COMMANDS = {
    "workloads": _cmd_workloads,
    "record": _cmd_record,
    "inspect": _cmd_inspect,
    "stats": _cmd_stats,
    "diff": _cmd_diff,
    "svm-export": _cmd_svm_export,
    "replay": _cmd_replay,
    "evaluate": _cmd_evaluate,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
