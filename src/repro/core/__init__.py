"""IRIS core: record, replay, manage (the paper's primary contribution).

Public API:

* :class:`~repro.core.seed.VMSeed` / :class:`~repro.core.seed.Trace` —
  the VM-seed model and its 10-byte-entry binary format (paper §V-A);
* :class:`~repro.core.record.Recorder` — hooks into the hypervisor's
  instrumented vmread/vmwrite wrappers and collects seeds + metrics;
* :class:`~repro.core.replay.Replayer` / ``DummyVm`` — preemption-timer
  driven seed submission with VMREAD overriding (paper §IV-B/§V-B);
* :class:`~repro.core.manager.IrisManager` — the operation-mode manager
  exposed through the ``xc_vmcs_fuzzing`` hypercall (paper §IV-C/§V-C);
* :mod:`repro.core.snapshot` — test-VM snapshot save/revert.
"""

from repro.core.seed import (
    SeedEntry,
    SeedFlag,
    VMSeed,
    ExitMetrics,
    VMExitRecord,
    Trace,
    SEED_ENTRY_SIZE,
    MAX_VMCS_OPS_PER_EXIT,
    WORST_CASE_SEED_BYTES,
)
from repro.core.record import Recorder
from repro.core.replay import Replayer, ReplayOutcome, SeedReplayResult
from repro.core.snapshot import VmSnapshot, take_snapshot, restore_snapshot
from repro.core.manager import IrisManager, IrisMode

__all__ = [
    "SeedEntry",
    "SeedFlag",
    "VMSeed",
    "ExitMetrics",
    "VMExitRecord",
    "Trace",
    "SEED_ENTRY_SIZE",
    "MAX_VMCS_OPS_PER_EXIT",
    "WORST_CASE_SEED_BYTES",
    "Recorder",
    "Replayer",
    "ReplayOutcome",
    "SeedReplayResult",
    "VmSnapshot",
    "take_snapshot",
    "restore_snapshot",
    "IrisManager",
    "IrisMode",
]
