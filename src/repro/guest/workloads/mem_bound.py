"""MEM-bound workload: stack/heap/mmap/shared-memory stress (§VI-A).

Memory pressure shows up to the hypervisor as populate-on-demand EPT
violations when the guest first touches new frames, INVLPG flushes from
mmap/munmap churn, and the same RDTSC-dominated timekeeping rhythm as
every non-boot workload (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.guest.ops import GuestOp, OpKind
from repro.guest.workloads.base import Workload


@dataclass
class MemBoundWorkload(Workload):
    """Memory-intensive loop over a growing working set."""

    name: str = "MEM-bound"
    description: str = (
        "memory stress: stack, heap, memory mapping, shared memory"
    )
    compute_cycles: int = 1_600_000
    #: First frame of the demand-populated working set (256 MiB up).
    heap_base_gfn: int = 0x10000

    def ops(self) -> Iterator[GuestOp]:
        rng = self.rng()
        iteration = 0
        next_fresh_gfn = self.heap_base_gfn
        while True:
            iteration += 1
            jitter = rng.randrange(-150_000, 150_000)
            yield GuestOp(OpKind.RDTSC,
                          cycles=self.compute_cycles + jitter)
            yield GuestOp(OpKind.RDTSC, cycles=8_000)

            if iteration % 4 == 0:
                # First touch of a new heap/mmap frame: EPT violation,
                # populate-on-demand path in the hypervisor.
                yield GuestOp(
                    OpKind.MMIO_WRITE, cycles=20_000,
                    gpa=next_fresh_gfn << 12, opcode=0x89,
                )
                next_fresh_gfn += 1
            if iteration % 10 == 0:
                # munmap -> TLB shootdown.
                yield GuestOp(OpKind.INVLPG, cycles=15_000,
                              gpa=(self.heap_base_gfn +
                                   rng.randrange(512)) << 12)
            if iteration % 16 == 0:
                yield GuestOp(OpKind.MMIO_WRITE, cycles=25_000,
                              gpa=0xFEE000B0, opcode=0x89)  # APIC EOI
            if iteration % 32 == 0:
                yield GuestOp(OpKind.CLTS, cycles=25_000)
            if iteration % 48 == 0:
                yield GuestOp(OpKind.VMCALL, cycles=30_000,
                              hypercall=24)  # vcpu_op
