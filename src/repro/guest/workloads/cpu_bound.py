"""CPU-bound workload: compute-heavy guest activity (paper §VI-A).

Fibonacci/matrix kernels burn large non-sensitive cycle blocks; the
exits are dominated (~80%, Fig. 5) by the RDTSC pairs the kernel's
timekeeping and scheduler wrap around computation slices, with a thin
tail of CPUID feature checks, lazy-FPU CR0 traffic, hypercalls, and
APIC timer EOIs (EPT violations whose *varied* instruction encodings
make a handful of emulator paths record-only under replay — the source
of Fig. 6's 92.1% CPU-bound coverage fitting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.guest.ops import GuestOp, OpKind
from repro.guest.workloads.base import Workload

#: Varied MMIO opcode mix: matrix/memcpy kernels touch the APIC page
#: (EOI/TPR updates from the tick handler) with different instructions.
_EOI_OPCODES = (0x89, 0xC7, 0x01, 0x31, 0x88)


@dataclass
class CpuBoundWorkload(Workload):
    """Compute-intensive loop: Fibonacci + matrix multiply slices."""

    name: str = "CPU-bound"
    description: str = "CPU-intensive operations (Fibonacci, matrices)"
    #: Average compute cycles between scheduler timestamps (~1.1M gives
    #: the paper's 1.44 s real-execution time for 5000 exits).
    compute_cycles: int = 2_050_000

    def ops(self) -> Iterator[GuestOp]:
        rng = self.rng()
        iteration = 0
        while True:
            iteration += 1
            jitter = rng.randrange(-200_000, 200_000)
            # sched_clock() timestamps around the computation slice.
            yield GuestOp(OpKind.RDTSC,
                          cycles=self.compute_cycles + jitter)
            yield GuestOp(OpKind.RDTSC, cycles=8_000)

            if iteration % 16 == 0:
                # Timer-tick bookkeeping: EOI to the local APIC with a
                # rotating instruction encoding.
                opcode = _EOI_OPCODES[(iteration // 16)
                                      % len(_EOI_OPCODES)]
                yield GuestOp(OpKind.MMIO_WRITE, cycles=25_000,
                              gpa=0xFEE000B0, opcode=opcode)
            if iteration % 24 == 0:
                # Lazy FPU: the context switch sets TS, first FP use
                # faults and the kernel executes CLTS.
                yield GuestOp(OpKind.CLTS, cycles=30_000)
            if iteration % 40 == 0:
                yield GuestOp(OpKind.CPUID, cycles=20_000, leaf=0x1)
            if iteration % 48 == 0:
                yield GuestOp(OpKind.VMCALL, cycles=30_000,
                              hypercall=29)  # sched_op
            if iteration % 64 == 0:
                yield GuestOp(OpKind.PAUSE, cycles=10_000)
