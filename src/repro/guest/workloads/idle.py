"""IDLE workload: the OS idle loop (paper §VI-A).

The kernel's tickless idle: long HLT sleeps (the machine models the
far-out next-timer-event programming via ``idle_wake_period``) broken by
short wake bursts of timekeeping RDTSCs, an APIC EOI, and a scheduler
hypercall before halting again.  HLT exits give IDLE its signature bar
in Fig. 5, and the enormous elided sleep time gives replay its 294x
speedup in Fig. 9c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.guest.machine import GuestMachine
from repro.guest.ops import GuestOp, OpKind
from repro.guest.workloads.base import Workload


@dataclass
class IdleWorkload(Workload):
    """The guest idle loop with NOHZ-style long sleeps."""

    name: str = "IDLE"
    description: str = "OS idle loop (tickless, long HLT sleeps)"
    #: TSC cycles between idle wakeups (~0.47 s at 3.6 GHz).
    wake_period: int = 1_550_000_000
    #: RDTSC reads per wake burst (timekeeping + scheduler).
    burst_rdtscs: int = 30

    def configure(self, machine: GuestMachine) -> None:
        machine.idle_wake_period = self.wake_period
        # Tickless idle: the guest masks its LAPIC timer LVT, so the
        # vlapic timer stops refilling the IRR between wakeups (else
        # every HLT would wake instantly).
        vlapic = machine.hv.vlapic(machine.vcpu)
        vlapic.period = self.wake_period
        vlapic.next_timer_due = machine.hv.clock.now + self.wake_period

    def ops(self) -> Iterator[GuestOp]:
        rng = self.rng()
        yield GuestOp(OpKind.STI, cycles=2_000)
        burst = 0
        while True:
            burst += 1
            # Sleep; the wake arrives as an EXTERNAL INTERRUPT exit.
            yield GuestOp(OpKind.HLT, cycles=10_000)
            # Wake burst: clock read-out, tick accounting, EOI.
            for _ in range(self.burst_rdtscs):
                yield GuestOp(OpKind.RDTSC,
                              cycles=15_000 + rng.randrange(20_000))
            # APIC EOI; every 16th burst the tick handler's slow path
            # uses a different instruction (the rare memory-linked
            # divergent seeds the paper measures at ~1.16% for IDLE).
            eoi_opcode = 0xC6 if burst % 16 == 0 else 0x89
            yield GuestOp(OpKind.MMIO_WRITE, cycles=25_000,
                          gpa=0xFEE000B0, opcode=eoi_opcode)
            yield GuestOp(OpKind.VMCALL, cycles=30_000,
                          hypercall=29)  # sched_op(block)
            if burst % 6 == 0:
                yield GuestOp(OpKind.CPUID, cycles=15_000, leaf=0x1)
            if burst % 9 == 0:
                yield GuestOp(OpKind.PAUSE, cycles=8_000)
