"""I/O-bound workload: generic input/output stress (paper §VI-A).

Disk traffic through the IDE register file (command setup, status
polling, string-mode data transfers) interleaved with the ubiquitous
RDTSC timekeeping; the string transfers exercise the instruction
emulator, and therefore guest memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.guest.ops import GuestOp, OpKind
from repro.guest.workloads.base import Workload


@dataclass
class IoBoundWorkload(Workload):
    """Disk/console I/O loop."""

    name: str = "I/O-bound"
    description: str = "generic input/output stress (IDE + console)"
    compute_cycles: int = 500_000

    def ops(self) -> Iterator[GuestOp]:
        rng = self.rng()
        iteration = 0
        while True:
            iteration += 1
            jitter = rng.randrange(-100_000, 100_000)
            # Block-layer + VFS timekeeping around each request keeps
            # RDTSC the ~80% majority even under I/O stress (Fig. 5).
            yield GuestOp(OpKind.RDTSC,
                          cycles=self.compute_cycles + jitter)
            for _ in range(7):
                yield GuestOp(OpKind.RDTSC,
                              cycles=12_000 + rng.randrange(15_000))

            if iteration % 3 == 0:
                # One block request: LBA setup, command, poll, data.
                sector = rng.getrandbits(24)
                yield GuestOp(OpKind.IO_OUT, cycles=18_000, port=0x1F2,
                              value=8)  # sector count
                yield GuestOp(OpKind.IO_OUT, cycles=12_000, port=0x1F3,
                              value=sector & 0xFF)
                yield GuestOp(OpKind.IO_OUT, cycles=12_000, port=0x1F4,
                              value=(sector >> 8) & 0xFF)
                yield GuestOp(OpKind.IO_OUT, cycles=12_000, port=0x1F7,
                              value=0x20)  # READ SECTORS
                yield GuestOp(OpKind.IO_IN, cycles=40_000, port=0x1F7)
                yield GuestOp(OpKind.IO_STRING, cycles=60_000,
                              port=0x1F0, size=2, opcode=0xA4)

            if iteration % 12 == 0:
                yield GuestOp(OpKind.MMIO_WRITE, cycles=25_000,
                              gpa=0xFEE000B0, opcode=0x89)  # APIC EOI
            if iteration % 20 == 0:
                yield GuestOp(OpKind.VMCALL, cycles=30_000,
                              hypercall=32)  # event_channel_op
            if iteration % 32 == 0:
                yield GuestOp(OpKind.CLTS, cycles=25_000)
