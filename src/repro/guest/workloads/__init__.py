"""Workload registry: the five target workloads of paper §VI-A."""

from __future__ import annotations

import enum

from repro.guest.workloads.base import Workload
from repro.guest.workloads.cpu_bound import CpuBoundWorkload
from repro.guest.workloads.idle import IdleWorkload
from repro.guest.workloads.io_bound import IoBoundWorkload
from repro.guest.workloads.mem_bound import MemBoundWorkload
from repro.guest.workloads.os_boot import (
    FullBootWorkload,
    OsBootWorkload,
)


class WorkloadName(enum.Enum):
    """Stable workload identifiers (CLI / trace-file vocabulary)."""

    OS_BOOT = "os-boot"
    CPU_BOUND = "cpu-bound"
    MEM_BOUND = "mem-bound"
    IO_BOUND = "io-bound"
    IDLE = "idle"
    FULL_BOOT = "full-boot"


WORKLOADS: dict[WorkloadName, type[Workload]] = {
    WorkloadName.OS_BOOT: OsBootWorkload,
    WorkloadName.CPU_BOUND: CpuBoundWorkload,
    WorkloadName.MEM_BOUND: MemBoundWorkload,
    WorkloadName.IO_BOUND: IoBoundWorkload,
    WorkloadName.IDLE: IdleWorkload,
    WorkloadName.FULL_BOOT: FullBootWorkload,
}


def build_workload(
    name: WorkloadName | str, seed: int = 0, **kwargs
) -> Workload:
    """Instantiate a workload by name with a deterministic seed."""
    if isinstance(name, str):
        name = WorkloadName(name)
    return WORKLOADS[name](seed=seed, **kwargs)


__all__ = [
    "Workload",
    "WorkloadName",
    "WORKLOADS",
    "build_workload",
    "OsBootWorkload",
    "FullBootWorkload",
    "CpuBoundWorkload",
    "MemBoundWorkload",
    "IoBoundWorkload",
    "IdleWorkload",
]
