"""OS BOOT workload: booting the guest kernel (paper §VI-A).

Two variants: the 5000-exit recorded trace that starts after the last
BIOS exit (what Figs. 6-9 use), and the full ~520K-exit boot including
the BIOS prefix (what Fig. 4 plots over time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.guest.bios import bios_ops
from repro.guest.minios import (
    early_boot_ops,
    kernel_boot_ops,
    late_boot_ops,
    platform_boot_ops,
    _console,
)
from repro.guest.ops import GuestOp, OpKind
from repro.guest.workloads.base import Workload


@dataclass
class OsBootWorkload(Workload):
    """The 5000-exit OS BOOT trace (BIOS excluded)."""

    name: str = "OS BOOT"
    description: str = "Linux kernel boot up to the login prompt"

    def ops(self) -> Iterator[GuestOp]:
        return kernel_boot_ops(self.rng())


@dataclass
class FullBootWorkload(Workload):
    """BIOS + extended kernel boot: ~520K exits for Fig. 4.

    ``kernel_scale`` stretches the repetitive kernel phases (console
    output, device probing, scheduler warm-up) so that the full stream
    reaches the paper's ~520K exits at scale 1.0; tests use tiny scales.
    """

    name: str = "OS BOOT (full)"
    description: str = "Full boot including the BIOS prefix"
    kernel_scale: float = 1.0

    def ops(self) -> Iterator[GuestOp]:
        rng = self.rng()
        yield from bios_ops(rng, scale=max(
            1, round(self.kernel_scale)) if self.kernel_scale >= 1
            else 1)
        yield from early_boot_ops(rng)
        yield from platform_boot_ops(rng)
        # The repetitive middle of a real boot: daemons starting, udev
        # probing, filesystem scans — console output and disk I/O
        # dominate (Fig. 4/5), with scheduler timekeeping interleaved.
        rounds = max(1, int(2600 * self.kernel_scale))
        for round_idx in range(rounds):
            yield from _console(
                f"systemd[1]: Starting unit {round_idx:04d}.service "
                f"(pid {1000 + round_idx})...\n",
                cycles=45_000,
            )
            for _ in range(20):
                yield GuestOp(OpKind.IO_IN, cycles=30_000, port=0x1F7)
                yield GuestOp(OpKind.IO_STRING, cycles=40_000,
                              port=0x1F0, size=2, opcode=0xA4)
            for _ in range(60):
                yield GuestOp(OpKind.RDTSC,
                              cycles=30_000 + rng.randrange(25_000))
            yield from _console(
                f"systemd[1]: Started unit {round_idx:04d}.service\n",
                cycles=40_000,
            )
            if round_idx % 8 == 0:
                yield GuestOp(OpKind.MMIO_WRITE, cycles=35_000,
                              gpa=0xFEE000B0, opcode=0x89)
                yield GuestOp(OpKind.VMCALL, cycles=45_000,
                              hypercall=32)
        yield from late_boot_ops(rng)
