"""Workload protocol shared by the five target workloads (paper §VI-A)."""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.guest.machine import GuestMachine
from repro.guest.ops import GuestOp


@dataclass
class Workload:
    """A reproducible guest workload.

    Subclasses implement :meth:`ops`; :meth:`configure` lets a workload
    adjust machine parameters (the IDLE workload models the kernel's
    tickless idle by programming a long wake period).
    """

    name: str
    description: str
    seed: int = 0

    def rng(self) -> random.Random:
        """A fresh deterministic RNG for this workload instance.

        Keyed by a *stable* hash of the name (``hash()`` is randomized
        per process and would break cross-run trace determinism).
        """
        return random.Random(
            (zlib.crc32(self.name.encode()) ^ self.seed) & 0xFFFFFFFF
        )

    def ops(self) -> Iterator[GuestOp]:
        raise NotImplementedError

    def configure(self, machine: GuestMachine) -> None:
        """Hook for machine-level setup; default does nothing."""
        return None

    def run(
        self, machine: GuestMachine, max_exits: int
    ) -> int:
        """Configure and run this workload for ``max_exits`` exits."""
        self.configure(machine)
        return machine.run(self.ops(), max_exits=max_exits)
