"""The guest machine: turns workload op streams into VM exits.

Plays the role of the physical CPU running the guest in non-root mode:
it burns the guest's non-sensitive cycles on the simulated TSC, latches
exit information into the VMCS when a sensitive instruction traps, and
hands control to the hypervisor — including the asynchronous host-timer
interrupts that preempt the guest mid-computation (EXTERNAL INTERRUPT
exits) and the interrupt-window exits the hypervisor requests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GuestCrash
from repro.guest.ops import GuestOp, OpKind
from repro.hypervisor.dispatch import ExitEvent
from repro.hypervisor.domain import Domain
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.vcpu import Vcpu
from repro.vmx.exit_reasons import ExitReason
from repro.vmx.exit_qualification import (
    CrAccessQualification,
    CrAccessType,
    EptViolationQualification,
    IoQualification,
)
from repro.arch.fields import ArchField
from repro.x86.registers import GPR, Rflags

#: Host (Xen) timer period in TSC cycles: 250 Hz at 3.6 GHz.
HOST_TIMER_PERIOD = 14_400_000

#: Vector of the host timer interrupt (matches the EXT-INT handler).
HOST_TIMER_VECTOR = 0xEF

#: GPR index used in CR-access qualifications for each GPR we use.
_CR_QUAL_INDEX = {
    GPR.RAX: 0, GPR.RCX: 1, GPR.RDX: 2, GPR.RBX: 3,
    GPR.RBP: 5, GPR.RSI: 6, GPR.RDI: 7,
    GPR.R8: 8, GPR.R9: 9, GPR.R10: 10, GPR.R11: 11,
    GPR.R12: 12, GPR.R13: 13, GPR.R14: 14, GPR.R15: 15,
}


@dataclass
class MachineStats:
    """Counters the examples and tests introspect."""

    exits_delivered: int = 0
    ops_executed: int = 0
    external_interrupts: int = 0
    interrupt_windows: int = 0
    halted_sleeps: int = 0
    exit_reasons: dict[ExitReason, int] = field(default_factory=dict)


class GuestMachine:
    """Executes guest ops against one vCPU of an HVM domain."""

    def __init__(
        self,
        hv: Hypervisor,
        domain: Domain,
        rng: random.Random | None = None,
        code_base: int = 0x100000,
        vcpu_index: int = 0,
    ) -> None:
        if not domain.vcpus:
            raise ValueError("domain has no vCPU")
        if not 0 <= vcpu_index < len(domain.vcpus):
            raise ValueError(
                f"vcpu_index {vcpu_index} outside the domain's "
                f"{len(domain.vcpus)} vCPUs"
            )
        self.hv = hv
        self.domain = domain
        self.vcpu: Vcpu = domain.vcpus[vcpu_index]
        self.rng = rng or random.Random(0)
        #: Current guest RIP (flat addressing in the modelled guest).
        self.rip = self.vcpu.read_field(ArchField.GUEST_RIP)
        self.rsp = 0x9F000
        self.interrupts_enabled = False
        self.code_base = code_base
        self.host_timer_next = hv.clock.now + HOST_TIMER_PERIOD
        #: When set (tickless idle), HLT sleeps last this many cycles
        #: instead of waiting for the periodic platform timer.
        self.idle_wake_period: int | None = None
        self.stats = MachineStats()
        self._launched = False

    # ---- lifecycle -------------------------------------------------

    def launch(self) -> None:
        """First VM entry (VMLAUNCH path)."""
        if self._launched:
            return
        self.hv.launch(self.vcpu)
        self._launched = True

    def run(self, ops, max_exits: int | None = None) -> int:
        """Execute ops until exhaustion or ``max_exits`` exits.

        Returns the number of exits delivered.  Raises
        :class:`~repro.errors.GuestCrash` / ``HypervisorCrash`` if the
        workload kills the VM or the host.
        """
        self.launch()
        start_exits = self.stats.exits_delivered
        budget = max_exits if max_exits is not None else float("inf")
        for op in ops:
            self.execute(op)
            if self.stats.exits_delivered - start_exits >= budget:
                break
        return self.stats.exits_delivered - start_exits

    # ---- core op execution --------------------------------------------

    def execute(self, op: GuestOp) -> None:
        """Execute one guest op, delivering any exits it implies."""
        self.stats.ops_executed += 1
        self._burn_guest_cycles(op.cycles)
        self._maybe_interrupt_window()

        kind = op.kind
        if kind is OpKind.EXEC:
            return
        if kind is OpKind.MEM_WRITE:
            for gpa, data in op.stores:
                self.domain.memory.write(gpa, data)
            return
        if kind is OpKind.CLI:
            self.interrupts_enabled = False
            self._sync_rflags()
            return
        if kind is OpKind.STI:
            self.interrupts_enabled = True
            self._sync_rflags()
            return
        if kind is OpKind.JUMP:
            if op.new_rip is None:
                raise ValueError("JUMP op requires new_rip")
            self.rip = op.new_rip
            self.vcpu.write_field(ArchField.GUEST_RIP, self.rip)
            if op.new_cs_base is not None:
                self.vcpu.write_field(
                    ArchField.GUEST_CS_BASE, op.new_cs_base
                )
                self.vcpu.write_field(
                    ArchField.GUEST_CS_SELECTOR,
                    0x8 if op.new_cs_base == 0 else 0xF000,
                )
            return

        # Sensitive instruction: build and deliver the exit.
        event = self._build_exit(op)
        self._deliver(event)

    # ---- helpers ---------------------------------------------------------

    def _sync_rflags(self) -> None:
        rflags = int(Rflags.FIXED1)
        if self.interrupts_enabled:
            rflags |= int(Rflags.IF)
        self.vcpu.write_field(ArchField.GUEST_RFLAGS, rflags)

    def _burn_guest_cycles(self, cycles: int) -> None:
        """Advance guest time, taking host-timer preemptions."""
        remaining = cycles
        while remaining > 0:
            until_timer = self.host_timer_next - self.hv.clock.now
            if until_timer <= remaining:
                self.hv.clock.advance(max(until_timer, 0))
                self.host_timer_next += HOST_TIMER_PERIOD
                remaining -= max(until_timer, 0)
                self.stats.external_interrupts += 1
                self._deliver(ExitEvent(
                    reason=ExitReason.EXTERNAL_INTERRUPT,
                    intr_info=(1 << 31) | HOST_TIMER_VECTOR,
                    guest_cycles=max(until_timer, 0),
                ))
            else:
                self.hv.clock.advance(remaining)
                remaining = 0

    def _maybe_interrupt_window(self) -> None:
        """Honour an interrupt-window request from the hypervisor."""
        controls = self.vcpu.read_field(
            ArchField.CPU_BASED_VM_EXEC_CONTROL
        )
        if (controls & (1 << 2)) and self.interrupts_enabled:
            self.stats.interrupt_windows += 1
            self._deliver(ExitEvent(
                reason=ExitReason.INTERRUPT_WINDOW, guest_cycles=0,
            ))

    def _write_code_bytes(self, op: GuestOp) -> None:
        """Place instruction bytes at CS:RIP for emulator-bound ops."""
        encoded = bytes([op.opcode]) + (
            (op.gpa >> 8) & 0xFFFFFF
        ).to_bytes(3, "little")
        cs_base = self.vcpu.read_field(ArchField.GUEST_CS_BASE)
        self.domain.memory.write(cs_base + self.rip, encoded)

    def _set_background_gprs(self) -> None:
        """Give callee-saved registers live-looking values.

        Real seeds carry whatever the guest kernel had in its registers;
        deterministic pseudo-random values model that.
        """
        regs = self.vcpu.regs
        regs.write_gpr(GPR.RBP, 0xFFFF8800_00000000 | self.rng.getrandbits(20))
        regs.write_gpr(GPR.RSI, self.rng.getrandbits(32))
        regs.write_gpr(GPR.RDI, self.rng.getrandbits(32))
        regs.write_gpr(GPR.R12, self.rng.getrandbits(16))

    def _build_exit(self, op: GuestOp) -> ExitEvent:
        """Latch GPRs/instruction bytes and craft the exit event."""
        regs = self.vcpu.regs
        self._set_background_gprs()
        kind = op.kind
        instruction_len = 2

        if kind is OpKind.CPUID:
            regs.write_gpr(GPR.RAX, op.leaf)
            return ExitEvent(ExitReason.CPUID, guest_cycles=op.cycles)
        if kind is OpKind.RDTSC:
            return ExitEvent(ExitReason.RDTSC, guest_cycles=op.cycles)
        if kind is OpKind.RDTSCP:
            return ExitEvent(
                ExitReason.RDTSCP, instruction_len=3,
                guest_cycles=op.cycles,
            )
        if kind in (OpKind.IO_OUT, OpKind.IO_IN, OpKind.IO_STRING):
            qual = IoQualification(
                port=op.port, size=op.size,
                direction_in=kind is OpKind.IO_IN,
                string_op=kind is OpKind.IO_STRING,
            )
            if kind is not OpKind.IO_IN:
                regs.write_gpr(GPR.RAX, op.value)
            if kind is OpKind.IO_STRING:
                self._write_code_bytes(op)
            return ExitEvent(
                ExitReason.IO_INSTRUCTION, qualification=qual.pack(),
                instruction_len=1 if op.port < 0x100 else 2,
                guest_cycles=op.cycles,
            )
        if kind in (OpKind.MOV_TO_CR, OpKind.MOV_FROM_CR):
            access = (
                CrAccessType.MOV_TO_CR if kind is OpKind.MOV_TO_CR
                else CrAccessType.MOV_FROM_CR
            )
            qual = CrAccessQualification(
                cr=op.cr, access_type=access,
                gpr=_CR_QUAL_INDEX[op.gpr],
            )
            if kind is OpKind.MOV_TO_CR:
                regs.write_gpr(op.gpr, op.value)
            return ExitEvent(
                ExitReason.CR_ACCESS, qualification=qual.pack(),
                instruction_len=3, guest_cycles=op.cycles,
            )
        if kind is OpKind.CLTS:
            qual = CrAccessQualification(
                cr=0, access_type=CrAccessType.CLTS
            )
            return ExitEvent(
                ExitReason.CR_ACCESS, qualification=qual.pack(),
                guest_cycles=op.cycles,
            )
        if kind is OpKind.LMSW:
            qual = CrAccessQualification(
                cr=0, access_type=CrAccessType.LMSW,
                lmsw_source=op.value & 0xFFFF,
            )
            return ExitEvent(
                ExitReason.CR_ACCESS, qualification=qual.pack(),
                instruction_len=3, guest_cycles=op.cycles,
            )
        if kind is OpKind.RDMSR:
            regs.write_gpr(GPR.RCX, op.msr)
            return ExitEvent(ExitReason.RDMSR, guest_cycles=op.cycles)
        if kind is OpKind.WRMSR:
            regs.write_gpr(GPR.RCX, op.msr)
            regs.write_gpr(GPR.RAX, op.value & 0xFFFFFFFF)
            regs.write_gpr(GPR.RDX, op.value >> 32)
            return ExitEvent(ExitReason.WRMSR, guest_cycles=op.cycles)
        if kind is OpKind.HLT:
            return ExitEvent(
                ExitReason.HLT, instruction_len=1,
                guest_cycles=op.cycles,
            )
        if kind is OpKind.PAUSE:
            return ExitEvent(ExitReason.PAUSE, guest_cycles=op.cycles)
        if kind is OpKind.VMCALL:
            regs.write_gpr(GPR.RAX, op.hypercall)
            return ExitEvent(
                ExitReason.VMCALL, instruction_len=3,
                guest_cycles=op.cycles,
            )
        if kind in (OpKind.MMIO_READ, OpKind.MMIO_WRITE):
            write = kind is OpKind.MMIO_WRITE
            self._write_code_bytes(op)
            qual = EptViolationQualification(
                read=not write, write=write, execute=False,
            )
            return ExitEvent(
                ExitReason.EPT_VIOLATION, qualification=qual.pack(),
                guest_linear_address=op.gpa,
                guest_physical_address=op.gpa,
                guest_cycles=op.cycles,
            )
        if kind is OpKind.INVLPG:
            return ExitEvent(
                ExitReason.INVLPG, qualification=op.gpa,
                instruction_len=3, guest_cycles=op.cycles,
            )
        if kind is OpKind.WBINVD:
            return ExitEvent(ExitReason.WBINVD, guest_cycles=op.cycles)
        if kind is OpKind.XSETBV:
            regs.write_gpr(GPR.RCX, 0)
            regs.write_gpr(GPR.RAX, op.value & 0xFFFFFFFF)
            regs.write_gpr(GPR.RDX, op.value >> 32)
            return ExitEvent(
                ExitReason.XSETBV, instruction_len=3,
                guest_cycles=op.cycles,
            )
        if kind is OpKind.EXCEPTION:
            info = (1 << 31) | (3 << 8) | (op.vector & 0xFF)
            if op.vector in (13, 14):
                info |= 1 << 11  # error code delivered
            return ExitEvent(
                ExitReason.EXCEPTION_NMI, intr_info=info,
                qualification=op.gpa if op.vector == 14 else 0,
                guest_cycles=op.cycles,
            )
        if kind is OpKind.TRIPLE_FAULT:
            return ExitEvent(
                ExitReason.TRIPLE_FAULT, guest_cycles=op.cycles
            )
        raise ValueError(f"cannot build exit for op kind {kind}")

    def _deliver(self, event: ExitEvent) -> None:
        """Hardware exit delivery: save guest state, call the handler."""
        self.vcpu.write_field(ArchField.GUEST_RIP, self.rip)
        self.vcpu.write_field(ArchField.GUEST_RSP, self.rsp)
        self._sync_rflags()
        event.write_to(self.vcpu)
        self.stats.exits_delivered += 1
        self.stats.exit_reasons[event.reason] = (
            self.stats.exit_reasons.get(event.reason, 0) + 1
        )
        self.hv.handle_vmexit(self.vcpu, event)
        # The handler may have advanced RIP (update_guest_eip).
        self.rip = self.vcpu.read_field(ArchField.GUEST_RIP)
        if event.reason is ExitReason.HLT:
            self._sleep_until_wakeup()

    def _sleep_until_wakeup(self) -> None:
        """The vCPU is halted; sleep until the platform timer wakes it."""
        activity = self.vcpu.read_field(ArchField.GUEST_ACTIVITY_STATE)
        if activity != 1:
            return
        self.stats.halted_sleeps += 1
        if self.idle_wake_period is not None:
            wake_at = self.hv.clock.now + self.idle_wake_period
            # Tickless idle: the guest cancels its periodic tick and
            # programs the next timer event at the wake deadline, so
            # neither the platform timer nor the vlapic timer fires
            # (and refills the IRR) mid-sleep.
            vpt = self.hv.platform_timer(self.domain)
            vpt.next_due = max(vpt.next_due, wake_at)
            vlapic = self.hv.vlapic(self.vcpu)
            vlapic.next_timer_due = max(vlapic.next_timer_due, wake_at)
        else:
            vpt = self.hv.platform_timer(self.domain)
            wake_at = max(vpt.next_due, self.hv.clock.now)
        self.hv.clock.advance(wake_at - self.hv.clock.now)
        # The timer interrupt arrives as an EXTERNAL INTERRUPT exit out
        # of the HLT activity state; its handler asserts the guest IRQ
        # and the following entry clears the activity state.
        self.stats.external_interrupts += 1
        self._deliver(ExitEvent(
            reason=ExitReason.EXTERNAL_INTERRUPT,
            intr_info=(1 << 31) | HOST_TIMER_VECTOR,
            guest_cycles=0,
        ))
        if self.vcpu.read_field(ArchField.GUEST_ACTIVITY_STATE) == 1:
            # Still halted (nothing was injected): force-wake so the
            # workload can continue; a real guest would stay blocked.
            self.vcpu.write_field(ArchField.GUEST_ACTIVITY_STATE, 0)
        if self.host_timer_next < self.hv.clock.now:
            missed = (
                (self.hv.clock.now - self.host_timer_next)
                // HOST_TIMER_PERIOD + 1
            )
            self.host_timer_next += missed * HOST_TIMER_PERIOD
