"""SMP guest execution: multiple vCPU flows in one VM (paper §IX).

"The current version of IRIS can record and replay VM behaviors
according to the VMCS structure provided by Intel VT-x, which is
created for each virtual CPU. Thus, the IRIS framework can record/
replay different flows of vCPU behaviors in the same VM."

:class:`SmpMachine` drives one :class:`~repro.guest.machine.
GuestMachine` per vCPU in round-robin quanta.  The simulated TSC is a
single host clock, so concurrent execution is *serialized* onto it —
functionally faithful (per-vCPU exit flows, shared domain memory and
devices), timing-wise a pessimistic interleaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.guest.machine import GuestMachine
from repro.guest.ops import GuestOp
from repro.hypervisor.domain import Domain
from repro.hypervisor.hypervisor import Hypervisor


@dataclass
class SmpStats:
    """Aggregated per-vCPU exit counts."""

    exits_per_vcpu: dict[int, int] = field(default_factory=dict)

    @property
    def total_exits(self) -> int:
        return sum(self.exits_per_vcpu.values())


class SmpMachine:
    """Round-robin executor over the vCPUs of one domain."""

    def __init__(
        self,
        hv: Hypervisor,
        domain: Domain,
        rng: random.Random | None = None,
        quantum_ops: int = 8,
    ) -> None:
        if len(domain.vcpus) < 1:
            raise ValueError("domain has no vCPU")
        if quantum_ops < 1:
            raise ValueError("quantum must be at least one op")
        self.hv = hv
        self.domain = domain
        self.quantum_ops = quantum_ops
        rng = rng or random.Random(0)
        self.machines = [
            GuestMachine(
                hv, domain,
                rng=random.Random(rng.getrandbits(32)),
                vcpu_index=index,
            )
            for index in range(len(domain.vcpus))
        ]

    def run(
        self,
        per_vcpu_ops: list[Iterator[GuestOp]],
        max_exits_per_vcpu: int | None = None,
    ) -> SmpStats:
        """Interleave the op streams until exhaustion or the budget.

        ``per_vcpu_ops[i]`` feeds vCPU ``i``; streams may have
        different lengths (a finished vCPU simply drops out of the
        rotation, like an offlined CPU).
        """
        if len(per_vcpu_ops) != len(self.machines):
            raise ValueError(
                f"need one op stream per vCPU "
                f"({len(self.machines)}), got {len(per_vcpu_ops)}"
            )
        streams = [iter(ops) for ops in per_vcpu_ops]
        budget = (
            max_exits_per_vcpu if max_exits_per_vcpu is not None
            else float("inf")
        )
        for machine in self.machines:
            machine.launch()

        start_counts = [
            machine.stats.exits_delivered for machine in self.machines
        ]
        active = set(range(len(self.machines)))
        while active:
            for index in sorted(active):
                machine = self.machines[index]
                delivered = (
                    machine.stats.exits_delivered
                    - start_counts[index]
                )
                if delivered >= budget:
                    active.discard(index)
                    continue
                for _ in range(self.quantum_ops):
                    op = next(streams[index], None)
                    if op is None:
                        active.discard(index)
                        break
                    machine.execute(op)

        return SmpStats(exits_per_vcpu={
            index: machine.stats.exits_delivered - start_counts[index]
            for index, machine in enumerate(self.machines)
        })
