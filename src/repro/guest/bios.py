"""BIOS (hvmloader) phase: the first ~10K exits of a full boot.

The paper excludes these from the OS BOOT trace ("our OS BOOT trace of
5000 VM exits starts after the last BIOS VM exit", §VI-A); Fig. 4 shows
them as the leading burst.  The op mix is what Xen's hvmloader + SeaBIOS
actually do: firmware-config transfers, PCI bus enumeration, VGA and
PIT/PIC/RTC/keyboard initialization, POST-code writes.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.guest.ops import GuestOp, OpKind


def bios_ops(
    rng: random.Random, scale: int = 1
) -> Iterator[GuestOp]:
    """Yield the BIOS/hvmloader op stream.

    ``scale = 1`` produces roughly 10K exits (the Fig. 4 BIOS prefix);
    smaller fractions are available for quick tests via ``scale`` on a
    0-1 float-like ratio applied to loop counts.
    """
    def out(port: int, value: int, cycles: int = 8_000) -> GuestOp:
        return GuestOp(OpKind.IO_OUT, cycles=cycles, port=port,
                       value=value)

    def inp(port: int, cycles: int = 8_000) -> GuestOp:
        return GuestOp(OpKind.IO_IN, cycles=cycles, port=port)

    # POST: a couple of progress codes.
    for code in (0x01, 0x02):
        yield out(0x80, code)

    # Firmware-config: hvmloader pulls tables over the fw_cfg channel.
    fw_items = max(1, 24 * scale)
    for item in range(fw_items):
        yield out(0x510, item, cycles=6_000)
        for _ in range(96):  # byte-wise data port reads
            yield inp(0x511, cycles=3_000)

    # PCI enumeration: 32 devices x 8 config dwords, address + data.
    pci_devices = max(1, 32 * scale)
    for device in range(pci_devices):
        for reg in range(8):
            address = 0x80000000 | (device << 11) | (reg << 2)
            yield out(0xCF8, address, cycles=5_000)
            yield inp(0xCFC, cycles=5_000)

    # VGA text mode setup.
    for reg in range(min(24, 24 * scale) or 1):
        yield out(0x3C0 + (reg % 0x20), rng.getrandbits(8), cycles=4_000)

    # PIT: program channel 0 for the BIOS tick.
    yield out(0x43, 0x34)
    yield out(0x40, 0x00)
    yield out(0x40, 0x00)

    # PIC: full ICW1-ICW4 init of both chips.
    for port, value in (
        (0x20, 0x11), (0x21, 0x08), (0x21, 0x04), (0x21, 0x01),
        (0xA0, 0x11), (0xA1, 0x70), (0xA1, 0x02), (0xA1, 0x01),
    ):
        yield out(port, value)

    # RTC: read the clock and a handful of CMOS configuration bytes.
    for index in (0x00, 0x02, 0x04, 0x06, 0x07, 0x08, 0x09, 0x0A,
                  0x0B, 0x0D, 0x10, 0x14):
        yield out(0x70, index, cycles=4_000)
        yield inp(0x71, cycles=4_000)

    # Keyboard controller self-test + config.
    yield out(0x64, 0xAA)
    yield inp(0x60)
    yield out(0x64, 0x60)
    yield out(0x60, 0x45)

    # Option-ROM scan: bursts of reads through the fw channel.
    for _ in range(max(1, 4 * scale)):
        yield out(0x510, 0x19, cycles=6_000)
        for _ in range(64):
            yield inp(0x511, cycles=3_000)

    yield out(0x80, 0xA0)  # POST: handing over to the bootloader
