"""Simulated guest: a miniature OS and the paper's five workloads.

IRIS never inspects guest code — it observes only the VM-exit stream.
This package produces that stream: a :class:`~repro.guest.machine.
GuestMachine` executes streams of :class:`~repro.guest.ops.GuestOp`
(sensitive instructions plus the non-sensitive cycles between them),
delivering architecturally-shaped VM exits to the hypervisor, with the
exit-reason mix and timing of the paper's workloads (Figs. 4, 5, 9).
"""

from repro.guest.ops import GuestOp, OpKind
from repro.guest.machine import GuestMachine, HOST_TIMER_PERIOD
from repro.guest.workloads import (
    WORKLOADS,
    WorkloadName,
    build_workload,
)

__all__ = [
    "GuestOp",
    "OpKind",
    "GuestMachine",
    "HOST_TIMER_PERIOD",
    "WORKLOADS",
    "WorkloadName",
    "build_workload",
]
