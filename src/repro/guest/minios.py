"""The miniature guest kernel: boot op streams.

Models what a Linux-like kernel does between the end of the BIOS and the
login prompt, at the granularity IRIS observes (sensitive instructions
and the cycles between them):

* **early phase** — real-mode entry, CPU feature enumeration, GDT
  construction, the protected-mode switch of paper §III, paging and
  IA-32e activation, the CR0 excursions of Fig. 8 (MTRR programming
  with caches disabled, lazy-FPU TS games);
* **platform phase** — PIC remap, PIT/RTC/keyboard setup, local APIC
  programming through MMIO, PCI re-enumeration, IDE probing, TSC
  calibration, console output;
* **late phase** — scheduler/timekeeping activity settling towards the
  login prompt.

The early phase carries large non-sensitive gaps (decompression,
memcpy), which is why the paper's Fig. 9a shows the first ~1000 exits
dominating the record/replay time difference.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.guest.ops import GuestOp, OpKind
from repro.x86.descriptors import (
    flat_code_descriptor,
    flat_data_descriptor,
)
from repro.x86.msr import Msr
from repro.x86.registers import GPR

#: Guest-physical layout of the mini-OS.
GDT_BASE = 0x6000
PAGE_TABLE_BASE = 0x2000
REAL_MODE_ENTRY = 0x7C00
PROTECTED_ENTRY = 0x100000
KERNEL_TEXT = 0x1000000

#: CR0 values walked during boot (the Fig. 8 ladder).
CR0_REAL = 0x10  # ET
CR0_PROT = 0x11  # +PE
CR0_PAGED = 0x80000011  # +PG
CR0_AM = 0x80040011  # +AM (MODE6: caches on)
CR0_CACHE_OFF = 0xC0040011  # +CD (MODE4)
CR0_TS = 0x80040019  # AM+TS (MODE5)
CR0_TS_CACHE_OFF = 0xC0040019  # (MODE7)


def _console(text: str, cycles: int = 30_000) -> Iterator[GuestOp]:
    """Boot console output: one OUT to the UART data port per byte."""
    for char in text:
        yield GuestOp(OpKind.IO_OUT, cycles=cycles, port=0x3F8,
                      value=ord(char) & 0xFF, size=1)


def _cpuid_sweep(cycles: int = 20_000) -> Iterator[GuestOp]:
    """Feature enumeration across the leaves the kernel reads."""
    for leaf in (0x0, 0x1, 0x2, 0x4, 0x6, 0x7, 0xB, 0xD,
                 0x80000000, 0x80000001, 0x80000002, 0x80000003,
                 0x80000004, 0x80000006, 0x80000008):
        yield GuestOp(OpKind.CPUID, cycles=cycles, leaf=leaf)


def early_boot_ops(rng: random.Random) -> Iterator[GuestOp]:
    """Real mode -> protected -> paged long mode (paper §III's example).

    Roughly 950 exits with ~1M-cycle guest gaps (kernel decompression).
    """
    # Bootloader entry: jump out of the BIOS segment.
    yield GuestOp(OpKind.JUMP, cycles=50_000, new_rip=REAL_MODE_ENTRY,
                  new_cs_base=0)
    yield GuestOp(OpKind.CLI, cycles=2_000)

    yield from _cpuid_sweep(cycles=60_000)
    for msr in (Msr.IA32_APIC_BASE, Msr.IA32_MISC_ENABLE,
                Msr.IA32_PLATFORM_ID, Msr.IA32_MTRRCAP,
                Msr.IA32_EFER, Msr.IA32_PAT):
        yield GuestOp(OpKind.RDMSR, cycles=40_000, msr=int(msr))

    # Build the GDT in guest memory: null, code, data descriptors.
    gdt = (
        b"\x00" * 8
        + flat_code_descriptor().pack()
        + flat_data_descriptor().pack()
    )
    yield GuestOp(OpKind.MEM_WRITE, cycles=150_000,
                  stores=((GDT_BASE, gdt),))

    # A20 gate via the keyboard controller, then kernel decompression.
    yield GuestOp(OpKind.IO_OUT, cycles=30_000, port=0x64, value=0xD1)
    yield GuestOp(OpKind.IO_OUT, cycles=30_000, port=0x60, value=0xDF)
    for _ in range(260):  # decompressor progress: RDTSC + big gaps
        yield GuestOp(OpKind.RDTSC,
                      cycles=1_400_000 + rng.randrange(600_000))

    # ---- the protected-mode switch (paper Fig. 2) -------------------
    yield GuestOp(OpKind.MOV_TO_CR, cycles=80_000, cr=0,
                  value=CR0_PROT, gpr=GPR.RAX)
    yield GuestOp(OpKind.JUMP, cycles=20_000, new_rip=PROTECTED_ENTRY,
                  new_cs_base=0)

    # Early serial console: init + banner.
    for port, value in ((0x3F9, 0x00), (0x3FB, 0x80), (0x3F8, 0x01),
                        (0x3F9, 0x00), (0x3FB, 0x03), (0x3FA, 0xC7),
                        (0x3FC, 0x0B)):
        yield GuestOp(OpKind.IO_OUT, cycles=40_000, port=port,
                      value=value)
    yield from _console(
        "Linux version 5.10.0 (gcc 10.2.1) #1 SMP\n", cycles=500_000
    )

    # Page tables + IA-32e activation.
    page_dir = b"".join(
        ((PAGE_TABLE_BASE + 0x1000 * (i + 1)) | 0x3).to_bytes(8, "little")
        for i in range(4)
    )
    yield GuestOp(OpKind.MEM_WRITE, cycles=400_000,
                  stores=((PAGE_TABLE_BASE, page_dir),))
    yield GuestOp(OpKind.MOV_TO_CR, cycles=60_000, cr=4, value=0x20,
                  gpr=GPR.RCX)  # CR4.PAE
    yield GuestOp(OpKind.MOV_TO_CR, cycles=30_000, cr=3,
                  value=PAGE_TABLE_BASE, gpr=GPR.RDI)
    yield GuestOp(OpKind.WRMSR, cycles=30_000,
                  msr=int(Msr.IA32_EFER), value=0x100)  # LME
    yield GuestOp(OpKind.MOV_TO_CR, cycles=60_000, cr=0,
                  value=CR0_PAGED, gpr=GPR.RAX)
    yield GuestOp(OpKind.JUMP, cycles=20_000, new_rip=KERNEL_TEXT,
                  new_cs_base=0)

    # Kernel proper: alignment checks on, MTRR programming with caches
    # disabled, lazy-FPU TS excursions (the Fig. 8 ladder).
    yield GuestOp(OpKind.MOV_TO_CR, cycles=100_000, cr=0,
                  value=CR0_AM, gpr=GPR.RBX)
    yield GuestOp(OpKind.WBINVD, cycles=40_000)
    yield GuestOp(OpKind.MOV_TO_CR, cycles=50_000, cr=0,
                  value=CR0_CACHE_OFF, gpr=GPR.RAX)
    for index in range(4):  # MTRR writes while caches are off
        yield GuestOp(OpKind.WRMSR, cycles=60_000,
                      msr=int(Msr.IA32_MTRR_DEF_TYPE), value=0xC06)
        yield GuestOp(OpKind.RDMSR, cycles=40_000,
                      msr=int(Msr.IA32_MTRRCAP))
    yield GuestOp(OpKind.MOV_TO_CR, cycles=50_000, cr=0,
                  value=CR0_AM, gpr=GPR.RAX)
    yield GuestOp(OpKind.MOV_TO_CR, cycles=80_000, cr=0,
                  value=CR0_TS, gpr=GPR.RDX)  # lazy FPU: TS set
    yield GuestOp(OpKind.MOV_TO_CR, cycles=40_000, cr=0,
                  value=CR0_TS_CACHE_OFF, gpr=GPR.RDX)
    yield GuestOp(OpKind.MOV_TO_CR, cycles=40_000, cr=0,
                  value=CR0_TS, gpr=GPR.RDX)
    yield GuestOp(OpKind.CLTS, cycles=30_000)
    yield GuestOp(OpKind.XSETBV, cycles=30_000, value=0x7)

    # More decompression-era messages with heavy gaps.
    yield from _console(
        "Command line: root=/dev/xvda1 console=ttyS0\n"
        "BIOS-provided physical RAM map:\n", cycles=700_000,
    )
    for _ in range(200):
        yield GuestOp(OpKind.RDTSC,
                      cycles=1_500_000 + rng.randrange(700_000))


def platform_boot_ops(rng: random.Random) -> Iterator[GuestOp]:
    """Device bring-up: ~3400 exits with ~60K-cycle gaps."""
    # PIC remap to vectors 0x20/0x28.
    for port, value in (
        (0x20, 0x11), (0x21, 0x20), (0x21, 0x04), (0x21, 0x01),
        (0xA0, 0x11), (0xA1, 0x28), (0xA1, 0x02), (0xA1, 0x01),
        (0x21, 0xFB), (0xA1, 0xFF),
    ):
        yield GuestOp(OpKind.IO_OUT, cycles=40_000, port=port,
                      value=value)

    # Local APIC: relocate-check MSR, then program it through MMIO
    # (each access is an EPT violation against the APIC page).
    yield GuestOp(OpKind.RDMSR, cycles=50_000,
                  msr=int(Msr.IA32_APIC_BASE))
    yield GuestOp(OpKind.WRMSR, cycles=50_000,
                  msr=int(Msr.IA32_APIC_BASE),
                  value=0xFEE00000 | (1 << 11) | (1 << 8))
    apic = 0xFEE00000
    for offset, opcode in (
        (0x020, 0x8B), (0x030, 0x8B), (0x0F0, 0x89), (0x0D0, 0x89),
        (0x080, 0x89), (0x320, 0x89), (0x380, 0x89), (0x3E0, 0x89),
        (0x350, 0x89), (0x360, 0x89),
    ):
        kind = OpKind.MMIO_WRITE if opcode == 0x89 else OpKind.MMIO_READ
        yield GuestOp(kind, cycles=45_000, gpa=apic + offset,
                      opcode=opcode)

    # PIT reprogram for the kernel tick + TSC calibration loop.
    yield GuestOp(OpKind.IO_OUT, cycles=35_000, port=0x43, value=0x34)
    yield GuestOp(OpKind.IO_OUT, cycles=35_000, port=0x40, value=0x9C)
    yield GuestOp(OpKind.IO_OUT, cycles=35_000, port=0x40, value=0x2E)
    for _ in range(150):
        yield GuestOp(OpKind.RDTSC, cycles=50_000)
        yield GuestOp(OpKind.IO_IN, cycles=30_000, port=0x40)

    # Xen platform detection: the hypervisor CPUID signature leaves,
    # then PV interfaces over VMCALL.
    for leaf in (0x40000000, 0x40000001, 0x40000002, 0x40000003,
                 0x40000004):
        yield GuestOp(OpKind.CPUID, cycles=30_000, leaf=leaf)
    for hypercall, repeat in ((34, 6), (32, 10), (24, 6), (29, 8)):
        for _ in range(repeat):
            yield GuestOp(OpKind.VMCALL, cycles=60_000,
                          hypercall=hypercall)

    # PCI re-enumeration by the kernel.
    for device in range(48):
        for reg in (0x00, 0x04, 0x08, 0x0C, 0x10, 0x3C):
            yield GuestOp(OpKind.IO_OUT, cycles=25_000, port=0xCF8,
                          value=0x80000000 | (device << 11) | reg)
            yield GuestOp(OpKind.IO_IN, cycles=25_000, port=0xCFC,
                          size=4)

    # IDE probe: control reads plus string transfers of IDENTIFY data.
    for _ in range(24):
        for port in (0x1F7, 0x1F6, 0x1F2, 0x1F3, 0x1F4, 0x1F5):
            yield GuestOp(OpKind.IO_IN, cycles=30_000, port=port)
        yield GuestOp(OpKind.IO_STRING, cycles=80_000, port=0x1F0,
                      size=2, opcode=0xA4)

    # RTC time read.
    for index in (0x00, 0x02, 0x04, 0x07, 0x08, 0x09):
        yield GuestOp(OpKind.IO_OUT, cycles=30_000, port=0x70,
                      value=index)
        yield GuestOp(OpKind.IO_IN, cycles=30_000, port=0x71)

    # Boot messages: the bulk of the I/O exits of Fig. 5's OS BOOT bar.
    messages = [
        "smpboot: CPU0: Intel Core i7-4790 (family: 0x6)\n",
        "Memory: 1024000K/1048576K available\n",
        "rcu: Hierarchical RCU implementation\n",
        "clocksource: tsc: mask 0xffffffffffffffff\n",
        "pci 0000:00:01.1: legacy IDE quirk\n",
        "serial: ttyS0 at I/O 0x3f8 (irq = 4) is a 16550A\n",
        "Freeing unused kernel memory: 1024K\n",
        "xen: --> pirq=16 -> irq=16\n",
        "blkfront: xvda: flush diskcache\n",
        "EXT4-fs (xvda1): mounted filesystem with ordered data mode\n",
        "systemd[1]: Detected virtualization xen\n",
        "systemd[1]: Reached target Basic System\n",
    ]
    for message in messages:
        yield from _console(message, cycles=55_000)
        for _ in range(25):
            yield GuestOp(OpKind.RDTSC,
                          cycles=40_000 + rng.randrange(30_000))

    # STI once the interrupt plumbing is alive.
    yield GuestOp(OpKind.STI, cycles=5_000)


def daemons_boot_ops(rng: random.Random) -> Iterator[GuestOp]:
    """Userspace bring-up: init, udev, services — ~2300 exits.

    Console-output- and disk-heavy, keeping I/O instructions the
    dominant OS BOOT exit reason (Fig. 5), with scheduler RDTSC bursts
    and lazy-FPU CR0 traffic as processes start.
    """
    services = [
        "udevd", "rsyslogd", "cron", "dbus-daemon", "sshd",
        "systemd-logind", "agetty", "networkd", "resolved",
        "timesyncd", "xenstored", "xenconsoled", "acpid",
        "polkitd", "unattended-upgrades", "getty-static",
    ]
    for index, service in enumerate(services):
        yield from _console(
            f"systemd[1]: Starting {service}.service...\n",
            cycles=40_000,
        )
        # The service binary is paged in from disk.
        for _ in range(6):
            yield GuestOp(OpKind.IO_IN, cycles=30_000, port=0x1F7)
            yield GuestOp(OpKind.IO_STRING, cycles=50_000, port=0x1F0,
                          size=2, opcode=0xA4)
        # Fork/exec: scheduler and timekeeping churn.
        for _ in range(35):
            yield GuestOp(OpKind.RDTSC,
                          cycles=25_000 + rng.randrange(30_000))
        # First FP use after the context switch.
        yield GuestOp(OpKind.MOV_TO_CR, cycles=25_000, cr=0,
                      value=CR0_TS, gpr=GPR.RDX)
        yield GuestOp(OpKind.CLTS, cycles=20_000)
        if index % 3 == 0:
            yield GuestOp(OpKind.MMIO_WRITE, cycles=30_000,
                          gpa=0xFEE000B0, opcode=0x89)
            yield GuestOp(OpKind.VMCALL, cycles=35_000, hypercall=32)
        if index % 4 == 0:
            yield GuestOp(OpKind.RDMSR, cycles=25_000,
                          msr=int(Msr.IA32_EFER))
        yield from _console(
            f"systemd[1]: Started {service}.service.\n", cycles=38_000,
        )
    # Filesystem check + mount chatter.
    for _ in range(40):
        yield GuestOp(OpKind.IO_IN, cycles=28_000, port=0x1F7)
        yield GuestOp(OpKind.IO_STRING, cycles=45_000, port=0x1F0,
                      size=2, opcode=0xAC)
        for _ in range(8):
            yield GuestOp(OpKind.RDTSC,
                          cycles=20_000 + rng.randrange(20_000))


def late_boot_ops(rng: random.Random) -> Iterator[GuestOp]:
    """Settling towards the login prompt: ~700 exits, small gaps."""
    yield from _console("\nDebian GNU/Linux 11 guest ttyS0\n\n",
                        cycles=35_000)
    for burst in range(10):
        for _ in range(28):
            yield GuestOp(OpKind.RDTSC,
                          cycles=25_000 + rng.randrange(20_000))
        yield GuestOp(OpKind.VMCALL, cycles=40_000, hypercall=29)
        yield GuestOp(OpKind.MMIO_WRITE, cycles=35_000,
                      gpa=0xFEE000B0, opcode=0x89)  # APIC EOI
        if burst % 3 == 0:
            yield GuestOp(OpKind.HLT, cycles=20_000)
    yield from _console("guest login: ", cycles=30_000)


def kernel_boot_ops(rng: random.Random) -> Iterator[GuestOp]:
    """The full OS BOOT op stream (post-BIOS), ~5000 exits."""
    yield from early_boot_ops(rng)
    yield from platform_boot_ops(rng)
    yield from daemons_boot_ops(rng)
    yield from late_boot_ops(rng)
