"""Guest operations: the unit of work a workload yields.

A :class:`GuestOp` is one guest-visible step — usually a sensitive
instruction that will trap (CPUID, RDTSC, IN/OUT, MOV CRn, ...), plus
the non-sensitive cycles the guest burned getting there.  Ops carry just
enough operand detail for the machine to set up the architecturally
correct GPRs, VMCS exit information and (where emulation needs them)
instruction bytes in guest memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.x86.registers import GPR


class OpKind(enum.Enum):
    """What the guest does next."""

    EXEC = "exec"  # non-sensitive computation: cycles only, no exit
    CPUID = "cpuid"
    RDTSC = "rdtsc"
    RDTSCP = "rdtscp"
    IO_OUT = "io_out"
    IO_IN = "io_in"
    IO_STRING = "io_string"  # INS/OUTS -> emulator path
    MOV_TO_CR = "mov_to_cr"
    MOV_FROM_CR = "mov_from_cr"
    CLTS = "clts"
    LMSW = "lmsw"
    RDMSR = "rdmsr"
    WRMSR = "wrmsr"
    HLT = "hlt"
    PAUSE = "pause"
    VMCALL = "vmcall"
    MMIO_READ = "mmio_read"  # unmapped/device GPA -> EPT violation
    MMIO_WRITE = "mmio_write"
    INVLPG = "invlpg"
    WBINVD = "wbinvd"
    XSETBV = "xsetbv"
    CLI = "cli"  # interrupt-flag changes: no exit, state only
    STI = "sti"
    JUMP = "jump"  # control transfer (far jmp after PE switch): no exit
    MEM_WRITE = "mem_write"  # guest stores (GDT/page-table setup)
    EXCEPTION = "exception"  # guest-raised exception intercepted by Xen
    TRIPLE_FAULT = "triple_fault"


#: Ops that deliver a VM exit when executed.
EXITING_KINDS: frozenset[OpKind] = frozenset({
    OpKind.CPUID, OpKind.RDTSC, OpKind.RDTSCP, OpKind.IO_OUT,
    OpKind.IO_IN, OpKind.IO_STRING, OpKind.MOV_TO_CR,
    OpKind.MOV_FROM_CR, OpKind.CLTS, OpKind.LMSW, OpKind.RDMSR,
    OpKind.WRMSR, OpKind.HLT, OpKind.PAUSE, OpKind.VMCALL,
    OpKind.MMIO_READ, OpKind.MMIO_WRITE, OpKind.INVLPG, OpKind.WBINVD,
    OpKind.XSETBV, OpKind.EXCEPTION, OpKind.TRIPLE_FAULT,
})


@dataclass(frozen=True)
class GuestOp:
    """One guest step.  Only the fields relevant to ``kind`` are used."""

    kind: OpKind
    #: Non-sensitive guest cycles spent before/through this op.
    cycles: int = 1_000
    #: CPUID leaf (RAX input).
    leaf: int = 0
    #: Port I/O operands.
    port: int = 0
    size: int = 1
    value: int = 0  # OUT value / WRMSR value / MOV-to-CR value
    #: Control-register operands.
    cr: int = 0
    gpr: GPR = GPR.RAX
    #: MSR index.
    msr: int = 0
    #: Guest-physical address for MMIO / INVLPG targets.
    gpa: int = 0
    #: Memory-operand opcode byte for emulated accesses (picks the
    #: emulator's per-opcode path; varied by workloads on purpose).
    opcode: int = 0x8B
    #: Hypercall number for VMCALL.
    hypercall: int = 0
    #: Exception vector for EXCEPTION ops.
    vector: int = 0
    #: New RIP after a JUMP (far jump during mode switches).
    new_rip: int | None = None
    #: New CS base for far JUMPs that reload the code segment.
    new_cs_base: int | None = None
    #: Guest stores to perform ((gpa, bytes) pairs) for MEM_WRITE ops.
    stores: tuple[tuple[int, bytes], ...] = field(default=())

    @property
    def exits(self) -> bool:
        return self.kind in EXITING_KINDS
