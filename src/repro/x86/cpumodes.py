"""CPU operating-mode lattice derived from CR0 (paper Figure 8).

The paper validates replay accuracy by tracking the sequence of guest
operating modes implied by VMWRITEs to the CR0 guest-state field during
OS BOOT.  Its Figure 8 names seven modes:

* ``Mode1`` — real mode (PE = 0)
* ``Mode2`` — protected mode (PE = 1, PG = 0)
* ``Mode3`` — protected mode with paging (PE = 1, PG = 1)
* ``Mode4`` — Mode3 + alignment checking (AM = 1)
* ``Mode5`` — Mode4 + task-switch flag testing (TS = 1)
* ``Mode6`` — Mode4 + caching enabled (CD = 0, NW = 0)
* ``Mode7`` — Mode5 + caching disabled (CD = 1)

Classification applies the most specific predicate first, so the lattice
is total: every CR0 value maps to exactly one mode.
"""

from __future__ import annotations

import enum

from repro.x86.registers import Cr0


class OperatingMode(enum.IntEnum):
    """The seven CR0-derived operating modes of paper Figure 8.

    Values are ordered so that the OS BOOT sequence is monotonically
    increasing through the common path (real -> protected -> paging).
    ``MODE0`` is the pre-boot "no state" marker that Xen's log calls
    "mode 0" in the crash message quoted by the paper (§VI-B).
    """

    MODE0 = 0  # uninitialized / pre-boot
    MODE1 = 1  # real mode
    MODE2 = 2  # protected mode
    MODE3 = 3  # protected + paging
    MODE4 = 4  # + alignment checking
    MODE5 = 5  # + task-switch flag testing
    MODE6 = 6  # MODE4 + caching enabled
    MODE7 = 7  # MODE5 + caching disabled


def classify_cr0(cr0: int) -> OperatingMode:
    """Map a CR0 value to the operating mode of Figure 8."""
    pe = bool(cr0 & Cr0.PE)
    pg = bool(cr0 & Cr0.PG)
    am = bool(cr0 & Cr0.AM)
    ts = bool(cr0 & Cr0.TS)
    cd = bool(cr0 & Cr0.CD)
    nw = bool(cr0 & Cr0.NW)

    if not pe:
        return OperatingMode.MODE1
    if not pg:
        return OperatingMode.MODE2
    if not am:
        return OperatingMode.MODE3
    if ts and cd:
        return OperatingMode.MODE7
    if ts:
        return OperatingMode.MODE5
    if not cd and not nw:
        return OperatingMode.MODE6
    return OperatingMode.MODE4


def mode_transitions(cr0_values: list[int]) -> list[OperatingMode]:
    """Collapse a CR0 write sequence into its mode-change sequence.

    Consecutive writes that stay within the same operating mode are
    merged, mirroring how Figure 8 plots mode *changes* across VM exits.
    """
    modes: list[OperatingMode] = []
    for value in cr0_values:
        mode = classify_cr0(value)
        if not modes or modes[-1] is not mode:
            modes.append(mode)
    return modes
