"""Deterministic CPU-cycle cost model.

Every observable time in the reproduction — Figure 9's replay-vs-real
comparison, Figure 10's recording overhead, the ideal-throughput analysis
of §VI-C — is derived from a simulated time-stamp counter that only this
cost model advances.  The constants are calibrated against the paper's
published absolute numbers for its 3.6 GHz Xeon testbed:

* an *empty* VM exit (hardware context switch out, dispatch, preemption-
  timer handler, entry checks, context switch in) costs ~70K cycles,
  matching the paper's ideal replay throughput of 50K exits/s
  (0.1 s / 5000 exits ~= 350M cycles, §VI-C);
* replay adds a per-seed injection cost proportional to the number of
  seed entries, landing measured replay throughput in the paper's
  18.5K-23.8K exits/s band;
* recording adds ~1% of handler time per exit (Figure 10's 1.02%-1.25%).

Guest-side instruction costs (the time a real guest spends *between*
exits, which replay elides) are parameters of the workload generators in
:mod:`repro.guest.workloads`, not of this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

#: Cycle costs of named micro-operations (see module docstring).
_DEFAULT_COST_TABLE: dict[str, int] = {
    # Hardware context switches (SDM: VM exit ~ tens of thousands of
    # cycles on Haswell-class parts).
    "vm_exit_context_switch": 22_000,
    "vm_entry_context_switch": 18_000,
    # Software VM-entry consistency checks (SDM §26.3 subset).
    "vm_entry_checks": 12_000,
    # Reading the exit reason + routing to the handler.
    "handler_dispatch": 8_000,
    # Executing one instrumented basic block of handler code.
    "handler_block": 450,
    # VMREAD/VMWRITE are serializing and expensive.
    "vmread": 800,
    "vmwrite": 1_000,
    # Saving/restoring the 15 hypervisor-held GPRs.
    "gpr_save": 1_500,
    "gpr_load": 1_500,
    # The near-empty preemption-timer handler body.
    "preemption_handler": 4_000,
    # IRIS replay: fixed cost of consuming one seed from the ring…
    "inject_base": 35_000,
    # …plus per-entry cost (GPR copy, _vmwrite(), or vmread-override).
    "inject_entry": 7_000,
    # IRIS record: callback invocation at handler start…
    "record_base": 500,
    # …plus per-entry buffering into the pre-allocated seed area.
    "record_entry": 45,
    # Reading the TSC for the temporal metric.
    "rdtsc_probe": 30,
    # Hypercall round trip (manager control path, not on the hot path).
    "hypercall": 40_000,
    # Asynchronous component activity (vlapic/irq/vpt callbacks).
    "async_event": 2_500,
    # Guest-memory access from the hypervisor (copy_from_guest et al.).
    "guest_mem_access": 1_200,
    # gcov compile-time instrumentation: the per-basic-block counter
    # update the paper's coverage collection pays inline.
    "gcov_probe": 25,
    # Intel PT alternative (paper §IX): the hardware emits a trace
    # packet per branch at near-zero cost to the traced code…
    "pt_packet": 4,
    # …and decoding happens offline, per recovered block.
    "pt_decode_block": 80,
}


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of micro-operations plus the clock frequency.

    Instances are immutable; derive variants with :meth:`with_overrides`
    (used by the ablation benchmarks to explore the cost space).
    """

    frequency_hz: float = 3.6e9
    table: Mapping[str, int] = field(
        default_factory=lambda: MappingProxyType(dict(_DEFAULT_COST_TABLE))
    )

    def cost(self, name: str) -> int:
        """Cycle cost of the named micro-operation."""
        try:
            return self.table[name]
        except KeyError:
            raise KeyError(f"unknown cost-model entry: {name!r}") from None

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at the model frequency."""
        return cycles / self.frequency_hz

    def cycles(self, seconds: float) -> int:
        """Convert seconds to cycles at the model frequency."""
        return round(seconds * self.frequency_hz)

    def with_overrides(self, **overrides: int) -> "CostModel":
        """Return a copy with some named costs replaced."""
        merged = dict(self.table)
        for name, value in overrides.items():
            if name not in merged:
                raise KeyError(f"unknown cost-model entry: {name!r}")
            merged[name] = value
        return CostModel(
            frequency_hz=self.frequency_hz, table=MappingProxyType(merged)
        )


#: The calibrated default model used throughout the library.
DEFAULT_COSTS = CostModel()
