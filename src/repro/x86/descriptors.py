"""Segment descriptors and descriptor-table registers (GDT/LDT/IDT).

The guest mini-OS builds a GDT in guest memory before switching to
protected mode, exactly as the paper's protected-mode example requires
(§III).  The hypervisor's instruction emulator dereferences descriptor
table bases out of guest memory, which is the mechanism behind the
paper's >30-LOC replay divergences (§VI-B): during replay the dummy VM's
memory does not contain the recorded guest's tables.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class SegmentDescriptor:
    """An 8-byte legacy segment descriptor.

    Only the fields the simulation consumes are modelled explicitly;
    :meth:`pack`/:meth:`unpack` round-trip through the real wire layout
    so that guest memory contains architecturally-shaped bytes.
    """

    base: int
    limit: int
    type_: int  # 4-bit type field
    s: bool  # descriptor type (1 = code/data)
    dpl: int
    present: bool
    avl: bool = False
    long_mode: bool = False
    default_big: bool = True
    granularity: bool = True

    def pack(self) -> bytes:
        """Encode into the architectural 8-byte descriptor layout."""
        limit = self.limit & 0xFFFFF
        base = self.base & 0xFFFFFFFF
        low = (limit & 0xFFFF) | ((base & 0xFFFF) << 16)
        access = (
            (self.type_ & 0xF)
            | (int(self.s) << 4)
            | ((self.dpl & 0x3) << 5)
            | (int(self.present) << 7)
        )
        flags = (
            int(self.avl)
            | (int(self.long_mode) << 1)
            | (int(self.default_big) << 2)
            | (int(self.granularity) << 3)
        )
        high = (
            ((base >> 16) & 0xFF)
            | (access << 8)
            | (((limit >> 16) & 0xF) << 16)
            | (flags << 20)
            | (((base >> 24) & 0xFF) << 24)
        )
        return struct.pack("<II", low, high)

    @classmethod
    def unpack(cls, raw: bytes) -> "SegmentDescriptor":
        """Decode an 8-byte descriptor; inverse of :meth:`pack`."""
        if len(raw) != 8:
            raise ValueError(f"descriptor must be 8 bytes, got {len(raw)}")
        low, high = struct.unpack("<II", raw)
        limit = (low & 0xFFFF) | (((high >> 16) & 0xF) << 16)
        base = (
            ((low >> 16) & 0xFFFF)
            | (((high) & 0xFF) << 16)
            | (((high >> 24) & 0xFF) << 24)
        )
        access = (high >> 8) & 0xFF
        flags = (high >> 20) & 0xF
        return cls(
            base=base,
            limit=limit,
            type_=access & 0xF,
            s=bool(access & 0x10),
            dpl=(access >> 5) & 0x3,
            present=bool(access & 0x80),
            avl=bool(flags & 0x1),
            long_mode=bool(flags & 0x2),
            default_big=bool(flags & 0x4),
            granularity=bool(flags & 0x8),
        )

    @property
    def access_rights(self) -> int:
        """VT-x style access-rights encoding for VMCS segment fields."""
        ar = (
            (self.type_ & 0xF)
            | (int(self.s) << 4)
            | ((self.dpl & 0x3) << 5)
            | (int(self.present) << 7)
            | (int(self.avl) << 12)
            | (int(self.long_mode) << 13)
            | (int(self.default_big) << 14)
            | (int(self.granularity) << 15)
        )
        if not self.present:
            ar |= 1 << 16  # unusable
        return ar


def flat_code_descriptor(dpl: int = 0) -> SegmentDescriptor:
    """A flat 4 GiB ring-``dpl`` code descriptor (the mini-OS default)."""
    return SegmentDescriptor(
        base=0, limit=0xFFFFF, type_=0xB, s=True, dpl=dpl, present=True
    )


def flat_data_descriptor(dpl: int = 0) -> SegmentDescriptor:
    """A flat 4 GiB ring-``dpl`` data descriptor."""
    return SegmentDescriptor(
        base=0, limit=0xFFFFF, type_=0x3, s=True, dpl=dpl, present=True
    )


@dataclass
class DescriptorTableRegister:
    """GDTR/IDTR/LDTR-style register: a base address and a limit."""

    base: int = 0
    limit: int = 0xFFFF

    def entry_address(self, selector: int) -> int:
        """Linear address of the descriptor a selector refers to."""
        index = selector >> 3
        return (self.base + index * 8) & MASK64

    def contains(self, selector: int) -> bool:
        """True when the selector's descriptor lies within the limit."""
        index = selector >> 3
        return index * 8 + 7 <= self.limit

    def copy(self) -> "DescriptorTableRegister":
        return DescriptorTableRegister(self.base, self.limit)
