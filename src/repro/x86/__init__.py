"""Simulated x86 CPU state: registers, control bits, descriptors, MSRs.

This package models the slice of the x86 architecture that hardware-
assisted virtualization (and therefore IRIS) observes: the general
purpose register file, control registers with their architectural bit
semantics, segmentation state (selectors, descriptor tables), the MSR
space, and the CPU operating-mode lattice that Figure 8 of the paper
derives from CR0.
"""

from repro.x86.registers import (
    GPR,
    Cr0,
    Cr4,
    Rflags,
    RegisterFile,
    SegmentRegister,
    SegmentCache,
)
from repro.x86.cpumodes import OperatingMode, classify_cr0
from repro.x86.descriptors import (
    DescriptorTableRegister,
    SegmentDescriptor,
)
from repro.x86.msr import Msr, MsrFile, MsrAccessError
from repro.x86.costs import CostModel, DEFAULT_COSTS

__all__ = [
    "GPR",
    "Cr0",
    "Cr4",
    "Rflags",
    "RegisterFile",
    "SegmentRegister",
    "SegmentCache",
    "OperatingMode",
    "classify_cr0",
    "DescriptorTableRegister",
    "SegmentDescriptor",
    "Msr",
    "MsrFile",
    "MsrAccessError",
    "CostModel",
    "DEFAULT_COSTS",
]
