"""Register file: GPRs, RFLAGS, control registers, segment registers.

The general-purpose register set deliberately matches what Xen keeps in
its own ``struct cpu_user_regs`` during a VM exit: the 15 registers that
the hardware does *not* save in the VMCS (RSP and RIP live in the VMCS
guest-state area instead).  The paper's seed format encodes a GPR with a
1-byte encoding covering exactly these 15 values (§V-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

MASK64 = (1 << 64) - 1


class GPR(enum.IntEnum):
    """General-purpose registers stored in hypervisor data structures.

    The numeric values are the seed-format encodings (1 byte, 15 values).
    RSP/RIP are absent on purpose: the hardware context switch saves them
    in the VMCS guest-state area, so IRIS captures them via VMREADs.
    """

    RAX = 0
    RBX = 1
    RCX = 2
    RDX = 3
    RSI = 4
    RDI = 5
    RBP = 6
    R8 = 7
    R9 = 8
    R10 = 9
    R11 = 10
    R12 = 11
    R13 = 12
    R14 = 13
    R15 = 14


class Cr0(enum.IntFlag):
    """CR0 architectural bits (SDM Vol. 3, §2.5)."""

    PE = 1 << 0  # protection enable
    MP = 1 << 1  # monitor coprocessor
    EM = 1 << 2  # x87 emulation
    TS = 1 << 3  # task switched
    ET = 1 << 4  # extension type (fixed 1 on modern CPUs)
    NE = 1 << 5  # numeric error
    WP = 1 << 16  # write protect
    AM = 1 << 18  # alignment mask
    NW = 1 << 29  # not write-through
    CD = 1 << 30  # cache disable
    PG = 1 << 31  # paging


#: Bits of CR0 that are architecturally reserved and must be zero.
#: (int() first: IntFlag inversion is bounded to defined bits.)
CR0_RESERVED = ~int(
    Cr0.PE | Cr0.MP | Cr0.EM | Cr0.TS | Cr0.ET | Cr0.NE
    | Cr0.WP | Cr0.AM | Cr0.NW | Cr0.CD | Cr0.PG
) & ~(0xFF << 6) & MASK64  # bits 6-15 tolerated in this model


class Cr4(enum.IntFlag):
    """CR4 architectural bits (subset relevant to virtualization)."""

    VME = 1 << 0
    PVI = 1 << 1
    TSD = 1 << 2
    DE = 1 << 3
    PSE = 1 << 4
    PAE = 1 << 5
    MCE = 1 << 6
    PGE = 1 << 7
    PCE = 1 << 8
    OSFXSR = 1 << 9
    OSXMMEXCPT = 1 << 10
    UMIP = 1 << 11
    VMXE = 1 << 13
    SMXE = 1 << 14
    FSGSBASE = 1 << 16
    PCIDE = 1 << 17
    OSXSAVE = 1 << 18
    SMEP = 1 << 20
    SMAP = 1 << 21
    PKE = 1 << 22


CR4_RESERVED = ~int(
    Cr4.VME | Cr4.PVI | Cr4.TSD | Cr4.DE | Cr4.PSE | Cr4.PAE | Cr4.MCE
    | Cr4.PGE | Cr4.PCE | Cr4.OSFXSR | Cr4.OSXMMEXCPT | Cr4.UMIP
    | Cr4.VMXE | Cr4.SMXE | Cr4.FSGSBASE | Cr4.PCIDE | Cr4.OSXSAVE
    | Cr4.SMEP | Cr4.SMAP | Cr4.PKE
) & MASK64


class Rflags(enum.IntFlag):
    """RFLAGS bits used by VMX semantics and entry checks."""

    CF = 1 << 0
    FIXED1 = 1 << 1  # bit 1 is architecturally always 1
    PF = 1 << 2
    AF = 1 << 4
    ZF = 1 << 6
    SF = 1 << 7
    TF = 1 << 8
    IF = 1 << 9
    DF = 1 << 10
    OF = 1 << 11
    NT = 1 << 14
    RF = 1 << 16
    VM = 1 << 17  # virtual-8086 mode
    AC = 1 << 18
    VIF = 1 << 19
    VIP = 1 << 20
    ID = 1 << 21


class SegmentRegister(enum.IntEnum):
    """Segment register names; values match VMCS guest-state ordering."""

    ES = 0
    CS = 1
    SS = 2
    DS = 3
    FS = 4
    GS = 5
    LDTR = 6
    TR = 7


@dataclass
class SegmentCache:
    """The hidden part of a segment register (base, limit, access rights).

    Mirrors the VMCS guest-state segment fields: selector, base address,
    segment limit and the access-rights byte layout used by VT-x
    (type, S, DPL, P, AVL, L, D/B, G, unusable at bit 16).
    """

    selector: int = 0
    base: int = 0
    limit: int = 0xFFFF
    access_rights: int = 0x93  # present, data, read/write

    @property
    def unusable(self) -> bool:
        return bool(self.access_rights & (1 << 16))

    @property
    def dpl(self) -> int:
        return (self.access_rights >> 5) & 0x3

    @property
    def present(self) -> bool:
        return bool(self.access_rights & (1 << 7))

    def copy(self) -> "SegmentCache":
        return SegmentCache(
            self.selector, self.base, self.limit, self.access_rights
        )


def _zero_gprs() -> dict[GPR, int]:
    return {reg: 0 for reg in GPR}


def _reset_segments() -> dict[SegmentRegister, SegmentCache]:
    segs = {seg: SegmentCache() for seg in SegmentRegister}
    # After reset, CS has base 0xFFFF0000 and selector 0xF000 (SDM §9.1.4);
    # we use the flat real-mode convention the BIOS model relies on.
    segs[SegmentRegister.CS] = SegmentCache(
        selector=0xF000, base=0xF0000, limit=0xFFFF, access_rights=0x9B
    )
    segs[SegmentRegister.TR] = SegmentCache(
        selector=0, base=0, limit=0xFFFF, access_rights=0x8B
    )
    return segs


@dataclass
class RegisterFile:
    """Full architectural register state of one virtual CPU.

    GPRs are the hypervisor-saved set; RSP/RIP/RFLAGS/CRx/segments are
    the state that the VMCS guest-state area captures on a VM exit.
    """

    gprs: dict[GPR, int] = field(default_factory=_zero_gprs)
    rip: int = 0xFFF0
    rsp: int = 0
    rflags: int = int(Rflags.FIXED1)
    cr0: int = int(Cr0.ET)  # reset state: real mode, ET fixed
    cr2: int = 0
    cr3: int = 0
    cr4: int = 0
    dr7: int = 0x400
    segments: dict[SegmentRegister, SegmentCache] = field(
        default_factory=_reset_segments
    )
    #: GPRs written since :meth:`mark_clean` — the write set the
    #: delta-aware snapshot restore touches instead of all sixteen.
    dirty_gprs: set[GPR] = field(default_factory=set)

    def read_gpr(self, reg: GPR) -> int:
        return self.gprs[reg]

    def write_gpr(self, reg: GPR, value: int) -> None:
        reg = GPR(reg)
        self.gprs[reg] = value & MASK64
        self.dirty_gprs.add(reg)

    def mark_clean(self) -> None:
        """Reset the GPR write set (snapshot taken/restored here)."""
        self.dirty_gprs.clear()

    def snapshot_gprs(self) -> dict[GPR, int]:
        """Return a copy of the GPR set (what Xen saves on VM exit)."""
        return dict(self.gprs)

    def load_gprs(self, values: dict[GPR, int]) -> None:
        """Overwrite the GPR set, e.g. when IRIS submits a seed."""
        for reg, value in values.items():
            self.write_gpr(GPR(reg), value)

    def copy(self) -> "RegisterFile":
        return RegisterFile(
            gprs=dict(self.gprs),
            dirty_gprs=set(self.dirty_gprs),
            rip=self.rip,
            rsp=self.rsp,
            rflags=self.rflags,
            cr0=self.cr0,
            cr2=self.cr2,
            cr3=self.cr3,
            cr4=self.cr4,
            dr7=self.dr7,
            segments={s: c.copy() for s, c in self.segments.items()},
        )
