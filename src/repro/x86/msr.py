"""Model-specific register (MSR) space.

RDMSR/WRMSR are sensitive instructions and therefore VM-exit sources; the
hypervisor's MSR exit handlers consult this database to decide between
pass-through, emulation, and injecting #GP — the three behaviours Xen's
``hvm_msr_read_intercept``/``hvm_msr_write_intercept`` implement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

MASK64 = (1 << 64) - 1


class Msr(enum.IntEnum):
    """Architectural MSR indices used by the simulation."""

    IA32_TSC = 0x10
    IA32_PLATFORM_ID = 0x17
    IA32_APIC_BASE = 0x1B
    IA32_FEATURE_CONTROL = 0x3A
    IA32_SPEC_CTRL = 0x48
    IA32_BIOS_SIGN_ID = 0x8B
    IA32_MTRRCAP = 0xFE
    IA32_SYSENTER_CS = 0x174
    IA32_SYSENTER_ESP = 0x175
    IA32_SYSENTER_EIP = 0x176
    IA32_MCG_CAP = 0x179
    IA32_MCG_STATUS = 0x17A
    IA32_PERF_STATUS = 0x198
    IA32_MISC_ENABLE = 0x1A0
    IA32_DEBUGCTL = 0x1D9
    IA32_PAT = 0x277
    IA32_MTRR_DEF_TYPE = 0x2FF
    IA32_VMX_BASIC = 0x480
    IA32_VMX_PINBASED_CTLS = 0x481
    IA32_VMX_PROCBASED_CTLS = 0x482
    IA32_VMX_EXIT_CTLS = 0x483
    IA32_VMX_ENTRY_CTLS = 0x484
    IA32_VMX_MISC = 0x485
    IA32_VMX_CR0_FIXED0 = 0x486
    IA32_VMX_CR0_FIXED1 = 0x487
    IA32_VMX_CR4_FIXED0 = 0x488
    IA32_VMX_CR4_FIXED1 = 0x489
    IA32_VMX_PROCBASED_CTLS2 = 0x48B
    IA32_VMX_EPT_VPID_CAP = 0x48C
    IA32_VMX_PREEMPTION_TIMER_RATE = 0x48D  # modelled: TSC shift
    IA32_TSC_DEADLINE = 0x6E0
    IA32_EFER = 0xC0000080
    IA32_STAR = 0xC0000081
    IA32_LSTAR = 0xC0000082
    IA32_CSTAR = 0xC0000083
    IA32_FMASK = 0xC0000084
    IA32_FS_BASE = 0xC0000100
    IA32_GS_BASE = 0xC0000101
    IA32_KERNEL_GS_BASE = 0xC0000102
    IA32_TSC_AUX = 0xC0000103


class EferBits(enum.IntFlag):
    """IA32_EFER bits."""

    SCE = 1 << 0
    LME = 1 << 8
    LMA = 1 << 10
    NXE = 1 << 11


#: MSRs a guest may read without triggering #GP in this model.
_READABLE: frozenset[int] = frozenset(int(m) for m in Msr)

#: MSRs that are read-only from the guest's point of view.
_GUEST_READ_ONLY: frozenset[int] = frozenset(
    {
        int(Msr.IA32_PLATFORM_ID),
        int(Msr.IA32_MTRRCAP),
        int(Msr.IA32_MCG_CAP),
        int(Msr.IA32_PERF_STATUS),
        int(Msr.IA32_VMX_BASIC),
        int(Msr.IA32_VMX_PINBASED_CTLS),
        int(Msr.IA32_VMX_PROCBASED_CTLS),
        int(Msr.IA32_VMX_EXIT_CTLS),
        int(Msr.IA32_VMX_ENTRY_CTLS),
        int(Msr.IA32_VMX_MISC),
        int(Msr.IA32_VMX_CR0_FIXED0),
        int(Msr.IA32_VMX_CR0_FIXED1),
        int(Msr.IA32_VMX_CR4_FIXED0),
        int(Msr.IA32_VMX_CR4_FIXED1),
        int(Msr.IA32_VMX_PROCBASED_CTLS2),
        int(Msr.IA32_VMX_EPT_VPID_CAP),
    }
)

#: Per-MSR masks of bits that are writable; other bits are reserved and
#: writing a 1 to them raises :class:`MsrAccessError` (#GP in hardware).
_WRITABLE_BITS: dict[int, int] = {
    int(Msr.IA32_EFER): int(
        EferBits.SCE | EferBits.LME | EferBits.LMA | EferBits.NXE
    ),
    int(Msr.IA32_APIC_BASE): 0xFFFFFF000 | (1 << 11) | (1 << 10) | (1 << 8),
    int(Msr.IA32_FEATURE_CONTROL): 0x7,
    int(Msr.IA32_DEBUGCTL): 0x3,
    int(Msr.IA32_MISC_ENABLE): (1 << 0) | (1 << 3) | (1 << 16) | (1 << 22),
    int(Msr.IA32_MTRR_DEF_TYPE): 0xCFF,
}


class MsrAccessError(Exception):
    """An MSR access that architecturally raises #GP(0)."""

    def __init__(self, msr: int, write: bool, reason: str) -> None:
        op = "WRMSR" if write else "RDMSR"
        super().__init__(f"{op} 0x{msr:x}: {reason}")
        self.msr = msr
        self.write = write
        self.reason = reason


def _default_values() -> dict[int, int]:
    return {
        int(Msr.IA32_APIC_BASE): 0xFEE00000 | (1 << 11) | (1 << 8),
        int(Msr.IA32_PLATFORM_ID): 1 << 50,
        int(Msr.IA32_MTRRCAP): 0x508,
        int(Msr.IA32_MCG_CAP): 0x9,
        int(Msr.IA32_PAT): 0x0007040600070406,
        int(Msr.IA32_MISC_ENABLE): 1 << 0,
        int(Msr.IA32_VMX_BASIC): (1 << 32) | 0x11,  # rev id 0x11, 4K region
        int(Msr.IA32_VMX_CR0_FIXED0): 0x80000021,  # PE|NE|PG must be 1
        int(Msr.IA32_VMX_CR0_FIXED1): 0xFFFFFFFF,
        int(Msr.IA32_VMX_CR4_FIXED0): 0x2000,  # VMXE must be 1
        int(Msr.IA32_VMX_CR4_FIXED1): 0x7FFFFF,
        int(Msr.IA32_MTRR_DEF_TYPE): 0xC06,
    }


@dataclass
class MsrFile:
    """The MSR state of one virtual CPU."""

    values: dict[int, int] = field(default_factory=_default_values)
    #: MSRs written since :meth:`mark_clean` — the write set the
    #: delta-aware snapshot restore touches instead of the whole file.
    dirty: set[int] = field(default_factory=set)

    def read(self, msr: int) -> int:
        """RDMSR semantics: unknown MSR -> #GP."""
        if msr not in _READABLE:
            raise MsrAccessError(msr, write=False, reason="unknown MSR")
        return self.values.get(msr, 0)

    def write(self, msr: int, value: int) -> None:
        """WRMSR semantics: reserved-bit or read-only writes -> #GP."""
        value &= MASK64
        if msr not in _READABLE:
            raise MsrAccessError(msr, write=True, reason="unknown MSR")
        if msr in _GUEST_READ_ONLY:
            raise MsrAccessError(msr, write=True, reason="read-only MSR")
        writable = _WRITABLE_BITS.get(msr)
        if writable is not None and value & ~writable & MASK64:
            raise MsrAccessError(
                msr, write=True,
                reason=f"reserved bits set: 0x{value & ~writable & MASK64:x}",
            )
        self.values[msr] = value
        self.dirty.add(msr)

    def mark_clean(self) -> None:
        """Reset the write set (snapshot taken/restored here)."""
        self.dirty.clear()

    def copy(self) -> "MsrFile":
        return MsrFile(values=dict(self.values), dirty=set(self.dirty))
