"""Deterministic micro-benchmark harness (the repo's perf tripwire).

The simulation gives this repo something real perf suites rarely have:
a *deterministic* cost axis.  Every benchmarked scenario reports

* **simulated-TSC cycles** — advanced only by the cost model, a pure
  function of the scenario, identical on every machine and every run.
  A cycle change means the modelled behavior changed (a handler grew a
  charge, a restore stopped being timeline-invariant), so the compare
  gate fails *hard* on any cycle drift.
* **wall-clock seconds** — how long the Python simulation itself takes,
  which is what the fast-reset work actually optimizes.  Wall time is
  machine-dependent, so the compare gate only bounds *regressions*
  within a configurable tolerance.

Results are schema-versioned ``BENCH_<scenario>.json`` documents;
committed baselines live in ``benchmarks/baselines/``.  Entry points::

    python -m repro.bench run --out OUTDIR       # run all scenarios
    python -m repro.bench.compare \
        --baseline benchmarks/baselines --candidate OUTDIR

See DESIGN.md §8 for the baseline-update workflow.
"""

from repro.bench.runner import (
    SCHEMA_VERSION,
    BenchDeterminismError,
    BenchResult,
    IterationOutcome,
    WallStats,
    run_scenario,
)
from repro.bench.scenarios import SCENARIOS, Scenario

__all__ = [
    "SCHEMA_VERSION",
    "BenchDeterminismError",
    "BenchResult",
    "IterationOutcome",
    "WallStats",
    "run_scenario",
    "SCENARIOS",
    "Scenario",
]
