"""The benchmark runner: warmup, repeats, determinism self-checks.

A scenario is a callable taking a parameter dict and returning an
:class:`IterationOutcome`.  The runner executes it ``warmup`` times
unmeasured, then ``repeat`` measured times, and insists that the
deterministic outputs (simulated cycles and the ``checks`` fingerprint)
are identical across every repeat — a scenario that fails that is
broken, not slow, and raising beats publishing garbage baselines.

Wall time is the median over repeats.  Scenarios whose setup cost would
drown the region of interest measure their own hot-loop wall time and
return it in :attr:`IterationOutcome.wall`; otherwise the runner times
the whole call.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

#: Bump on any incompatible change to the BENCH_*.json layout; the
#: compare gate refuses to diff documents of different versions.
SCHEMA_VERSION = 1


class BenchDeterminismError(RuntimeError):
    """A scenario produced different deterministic outputs across
    repeats — its cycles/checks cannot be trusted as a baseline."""


@dataclass
class IterationOutcome:
    """What one scenario iteration reports back to the runner."""

    #: Simulated-TSC cycles consumed by the region of interest.  Must
    #: be identical on every repeat (and every machine).
    cycles: int
    #: Deterministic fingerprint of the scenario's *behavior* (counts,
    #: final state digests, parity flags).  Compared exactly, both
    #: across repeats and against the committed baseline.
    checks: dict[str, object] = field(default_factory=dict)
    #: Informational wall-derived numbers (exec/s, speedups): medianed
    #: across repeats, recorded, never gated on.
    info: dict[str, float] = field(default_factory=dict)
    #: Scenario-measured wall seconds for the hot region; when None the
    #: runner's whole-call timing is used instead.
    wall: float | None = None


ScenarioFn = Callable[[dict[str, int]], IterationOutcome]


@dataclass
class WallStats:
    """Wall-clock statistics over the measured repeats."""

    median: float
    best: float
    worst: float
    samples: list[float]

    @classmethod
    def from_samples(cls, samples: list[float]) -> "WallStats":
        return cls(
            median=statistics.median(samples),
            best=min(samples),
            worst=max(samples),
            samples=list(samples),
        )


@dataclass
class BenchResult:
    """One scenario's result document (serialized as BENCH_<name>.json)."""

    schema_version: int
    scenario: str
    params: dict[str, int]
    warmup: int
    repeat: int
    cycles: int
    wall: WallStats
    checks: dict[str, object]
    info: dict[str, float]

    @property
    def filename(self) -> str:
        return f"BENCH_{self.scenario}.json"

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    def write(self, out_dir: Path) -> Path:
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / self.filename
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_json(cls, text: str) -> "BenchResult":
        data = json.loads(text)
        wall = WallStats(**data.pop("wall"))
        return cls(wall=wall, **data)

    @classmethod
    def from_path(cls, path: Path) -> "BenchResult":
        return cls.from_json(path.read_text())


def run_scenario(
    name: str,
    fn: ScenarioFn,
    params: dict[str, int],
    warmup: int = 1,
    repeat: int = 3,
) -> BenchResult:
    """Run one scenario: warmups, measured repeats, self-checks."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    for _ in range(warmup):
        fn(dict(params))

    outcomes: list[IterationOutcome] = []
    samples: list[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        outcome = fn(dict(params))
        elapsed = time.perf_counter() - start
        outcomes.append(outcome)
        samples.append(
            outcome.wall if outcome.wall is not None else elapsed
        )

    first = outcomes[0]
    for index, outcome in enumerate(outcomes[1:], start=2):
        if outcome.cycles != first.cycles:
            raise BenchDeterminismError(
                f"scenario {name!r}: repeat {index} consumed "
                f"{outcome.cycles} simulated cycles, repeat 1 consumed "
                f"{first.cycles} — the scenario is not deterministic"
            )
        if outcome.checks != first.checks:
            raise BenchDeterminismError(
                f"scenario {name!r}: repeat {index} produced a "
                f"different deterministic fingerprint: "
                f"{outcome.checks!r} != {first.checks!r}"
            )

    info: dict[str, float] = {}
    for key in first.info:
        info[key] = statistics.median(
            outcome.info[key] for outcome in outcomes
        )

    return BenchResult(
        schema_version=SCHEMA_VERSION,
        scenario=name,
        params=dict(params),
        warmup=warmup,
        repeat=repeat,
        cycles=first.cycles,
        wall=WallStats.from_samples(samples),
        checks=dict(first.checks),
        info=info,
    )
