"""``python -m repro.bench``: run the benchmark harness.

Subcommands::

    run   --out DIR [--scenario NAME]... [--repeat N] [--warmup N]
    list

``run`` writes one schema-versioned ``BENCH_<scenario>.json`` per
scenario into ``--out`` and prints a one-line summary each.  Compare a
fresh run against the committed baselines with
``python -m repro.bench.compare``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.runner import run_scenario
from repro.bench.scenarios import SCENARIOS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="IRIS-reproduction micro-benchmark harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run scenarios, write BENCH_*.json")
    run.add_argument(
        "--out", type=Path, required=True,
        help="directory to write BENCH_<scenario>.json files into",
    )
    run.add_argument(
        "--scenario", action="append", dest="scenarios",
        metavar="NAME", choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable; default: all)",
    )
    run.add_argument("--repeat", type=int, default=3,
                     help="measured repeats per scenario (median wins)")
    run.add_argument("--warmup", type=int, default=1,
                     help="unmeasured warmup runs per scenario")

    sub.add_parser("list", help="list scenarios and their parameters")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name}: {scenario.description} "
                  f"(params {scenario.params})")
        return 0

    names = args.scenarios or sorted(SCENARIOS)
    for name in names:
        scenario = SCENARIOS[name]
        result = run_scenario(
            name, scenario.fn, scenario.params,
            warmup=args.warmup, repeat=args.repeat,
        )
        path = result.write(args.out)
        extras = " ".join(
            f"{key}={value:.1f}" for key, value in
            sorted(result.info.items())
        )
        print(
            f"{name}: {result.cycles} cycles, "
            f"{result.wall.median:.3f}s median wall "
            f"({extras}) -> {path}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
