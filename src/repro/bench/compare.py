"""``python -m repro.bench.compare``: the perf-regression gate.

Compares a candidate benchmark run against committed baselines::

    python -m repro.bench.compare \
        --baseline benchmarks/baselines --candidate bench-out \
        --tolerance 1.0

Two classes of comparison, matching the two cost axes:

* **Hard failures** (never tolerated): schema-version or parameter
  mismatches, any simulated-cycle difference, any ``checks``
  fingerprint difference, and baselines with no candidate counterpart.
  These are all machine-independent, so a mismatch means behavior
  changed — update the baselines deliberately (see DESIGN.md §8), don't
  loosen the gate.
* **Wall regressions** (tolerance-bounded): the candidate's median wall
  time may exceed the baseline's by at most ``--tolerance`` (a ratio:
  0.5 allows 1.5x).  Wall time is machine- and load-dependent, so CI
  runs with a generous tolerance; the cycle checks are the real gate.
  ``--no-wall`` skips wall comparison entirely.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.bench.runner import BenchResult


@dataclass
class Finding:
    """One comparison outcome for one scenario."""

    scenario: str
    kind: str  # "hard" | "wall" | "ok"
    message: str

    @property
    def failed(self) -> bool:
        return self.kind != "ok"


def compare_results(
    baseline: BenchResult,
    candidate: BenchResult,
    tolerance: float,
    check_wall: bool = True,
) -> list[Finding]:
    """Compare one scenario's candidate result against its baseline."""
    name = baseline.scenario
    findings: list[Finding] = []
    if candidate.schema_version != baseline.schema_version:
        findings.append(Finding(name, "hard", (
            f"schema version {candidate.schema_version} != baseline "
            f"{baseline.schema_version}"
        )))
        return findings
    if candidate.params != baseline.params:
        findings.append(Finding(name, "hard", (
            f"parameters {candidate.params} != baseline "
            f"{baseline.params} — not comparable"
        )))
        return findings
    if candidate.cycles != baseline.cycles:
        findings.append(Finding(name, "hard", (
            f"simulated cycles changed: {candidate.cycles} vs baseline "
            f"{baseline.cycles} ({candidate.cycles - baseline.cycles:+d})"
        )))
    for key in sorted(set(baseline.checks) | set(candidate.checks)):
        have = candidate.checks.get(key)
        want = baseline.checks.get(key)
        if have != want:
            findings.append(Finding(name, "hard", (
                f"deterministic check {key!r} changed: "
                f"{have!r} vs baseline {want!r}"
            )))
    if check_wall and baseline.wall.median > 0:
        ratio = candidate.wall.median / baseline.wall.median
        if ratio > 1.0 + tolerance:
            findings.append(Finding(name, "wall", (
                f"wall time regressed {ratio:.2f}x "
                f"({candidate.wall.median:.3f}s vs baseline "
                f"{baseline.wall.median:.3f}s; tolerance allows "
                f"{1.0 + tolerance:.2f}x)"
            )))
    if not findings:
        findings.append(Finding(name, "ok", (
            f"cycles {candidate.cycles} exact, wall "
            f"{candidate.wall.median:.3f}s vs {baseline.wall.median:.3f}s"
        )))
    return findings


def compare_dirs(
    baseline_dir: Path,
    candidate_dir: Path,
    tolerance: float,
    check_wall: bool = True,
) -> list[Finding]:
    """Compare every baseline BENCH_*.json against the candidate dir."""
    findings: list[Finding] = []
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        findings.append(Finding("<none>", "hard", (
            f"no BENCH_*.json baselines found in {baseline_dir}"
        )))
        return findings
    for path in baselines:
        baseline = BenchResult.from_path(path)
        candidate_path = candidate_dir / path.name
        if not candidate_path.exists():
            findings.append(Finding(baseline.scenario, "hard", (
                f"candidate run produced no {path.name}"
            )))
            continue
        candidate = BenchResult.from_path(candidate_path)
        findings.extend(compare_results(
            baseline, candidate, tolerance, check_wall=check_wall,
        ))
    return findings


_STATUS_RANK = {"ok": 0, "wall": 1, "hard": 2}
_STATUS_LABEL = {"ok": "✅ ok", "wall": "⚠️ wall", "hard": "❌ fail"}


def render_summary(
    findings: list[Finding],
    baseline_dir: Path,
    candidate_dir: Path,
) -> str:
    """Markdown per-scenario delta table for the CI job summary.

    One row per committed baseline: median wall times of both runs,
    the relative delta, and the worst finding the gate recorded for
    that scenario.  Wall deltas are informational context for the
    (hard) cycle/checks verdicts — the table makes a slow creep
    visible long before it trips the tolerance.
    """
    status: dict[str, str] = {}
    for finding in findings:
        worst = status.get(finding.scenario, "ok")
        if _STATUS_RANK[finding.kind] >= _STATUS_RANK[worst]:
            status[finding.scenario] = finding.kind
    lines = [
        "## Benchmark comparison",
        "",
        "| scenario | baseline wall | candidate wall | delta "
        "| status |",
        "|---|---:|---:|---:|---|",
    ]
    for path in sorted(baseline_dir.glob("BENCH_*.json")):
        baseline = BenchResult.from_path(path)
        name = baseline.scenario
        verdict = _STATUS_LABEL[status.get(name, "ok")]
        candidate_path = candidate_dir / path.name
        if not candidate_path.exists():
            lines.append(
                f"| {name} | {baseline.wall.median:.3f}s | — | — "
                f"| {verdict} |"
            )
            continue
        candidate = BenchResult.from_path(candidate_path)
        if baseline.wall.median > 0:
            delta = (
                candidate.wall.median / baseline.wall.median - 1.0
            ) * 100.0
            delta_text = f"{delta:+.1f}%"
        else:
            delta_text = "—"
        lines.append(
            f"| {name} | {baseline.wall.median:.3f}s "
            f"| {candidate.wall.median:.3f}s | {delta_text} "
            f"| {verdict} |"
        )
    return "\n".join(lines) + "\n"


def write_job_summary(markdown: str) -> bool:
    """Append to the GitHub Actions job summary, if one is open."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return False
    with open(summary_path, "a", encoding="utf-8") as handle:
        handle.write(markdown)
    return True


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="compare a benchmark run against committed baselines",
    )
    parser.add_argument("--baseline", type=Path, required=True,
                        help="directory holding baseline BENCH_*.json")
    parser.add_argument("--candidate", type=Path, required=True,
                        help="directory holding the fresh run's output")
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed wall-time regression ratio (0.5 allows 1.5x; "
             "simulated cycles always compare exactly)",
    )
    parser.add_argument(
        "--no-wall", dest="check_wall", action="store_false",
        help="skip wall-time comparison (cycles/checks only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.tolerance < 0:
        print("--tolerance must be >= 0", file=sys.stderr)
        return 2
    findings = compare_dirs(
        args.baseline, args.candidate, args.tolerance,
        check_wall=args.check_wall,
    )
    failed = False
    for finding in findings:
        tag = {"ok": "OK  ", "wall": "WALL", "hard": "FAIL"}[finding.kind]
        print(f"[{tag}] {finding.scenario}: {finding.message}")
        failed = failed or finding.failed
    write_job_summary(render_summary(
        findings, args.baseline, args.candidate,
    ))
    if failed:
        print(
            "\nbenchmark comparison FAILED — if the change is "
            "intentional, refresh the baselines per DESIGN.md §8",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(findings)} scenario(s) within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
