"""The benchmarked scenarios.

Each scenario builds its whole world from scratch (fresh simulated
hypervisor, fixed RNG seeds) so its deterministic outputs are pure
functions of the parameter dict, then measures the wall time of the
hot region only (setup like recording the input trace is excluded).

The ``fuzz_exec`` scenarios are the headline: they run the same serial
fuzzing loop twice — fast-reset on, then off — and report both
throughputs plus the speedup.  Their ``checks`` pin crash/mutation
parity between the modes and the (deterministic) cycle delta of the
fast path's batched replay charges; byte-identical coverage parity is
the campaign-level differential tests' job, where every shard reaches
its target state exactly once.
"""

from __future__ import annotations

import hashlib
import io
import random
import struct
import time
from dataclasses import dataclass
from typing import Iterable

from repro.arch.fields import ALL_FIELDS, field_by_index
from repro.bench.runner import IterationOutcome, ScenarioFn
from repro.core.manager import IrisManager, RecordingSession
from repro.core.seed import (
    SEED_ENTRY_SIZE,
    SeedEntry,
    SeedFlag,
    VMSeed,
)
from repro.core.snapshot import restore_snapshot, take_snapshot
from repro.errors import SeedFormatError
from repro.fuzz.fuzzer import FuzzResult, IrisFuzzer
from repro.fuzz.mutations import MutationArea
from repro.fuzz.testcase import plan_test_cases
from repro.hypervisor.coverage import (
    BlockAllocator,
    CoverageMap,
    INSTRUMENTED_FILES,
    IRIS_FILE,
    SourceBlock,
)
from repro.vmx.exit_reasons import ExitReason
from repro.x86.registers import GPR

#: Exit reasons targeted by the fuzzing scenarios (reasons absent from
#: the recorded trace are skipped by the planner, as in Table I).
_REASONS = (
    ExitReason.CPUID,
    ExitReason.RDTSC,
    ExitReason.HLT,
    ExitReason.VMCALL,
)


def _record(
    manager: IrisManager, exits: int
) -> RecordingSession:
    """Record the standard input trace (setup, never measured)."""
    return manager.record_workload(
        "cpu-bound", n_exits=exits, precondition="boot",
        store_metrics=False,
    )


# ---- snapshot take/restore -------------------------------------------

def snapshot_roundtrip(params: dict[str, int]) -> IterationOutcome:
    """take_snapshot + one tracked drift + restore, fast and full.

    Cycles come from the drift (one seed submission per roundtrip);
    take/restore themselves are timeline-invariant.  The full loop
    runs after the fast loop on the same clock, so its submissions
    charge at different TSC phases — ``cycles_full_minus_fast`` is a
    nonzero but deterministic number, pinned like every other check.
    """
    iters = params["iters"]
    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    replayer = manager.create_dummy_vm(from_snapshot=session.snapshot)
    dummy = manager.dummy_vm
    assert dummy is not None
    hv = manager.hv
    seed = session.trace.records[0].seed

    walls: dict[str, float] = {}
    cycle_counts: dict[str, int] = {}
    for mode, fast in (("fast", True), ("full", False)):
        cycles_before = hv.clock.now
        start = time.perf_counter()
        for _ in range(iters):
            snap = take_snapshot(hv, dummy)
            replayer.submit(seed)
            restore_snapshot(hv, dummy, snap, fast=fast)
        walls[mode] = time.perf_counter() - start
        cycle_counts[mode] = hv.clock.now - cycles_before

    cycles = cycle_counts["fast"]
    checks: dict[str, object] = {
        "cycles_per_iter": cycles // iters,
        "cycles_full_minus_fast": cycle_counts["full"] - cycles,
        "final_rip": dummy.vcpus[0].regs.rip,
    }
    info = {
        "roundtrips_per_second_fast": iters / walls["fast"],
        "roundtrips_per_second_full": iters / walls["full"],
        "restore_speedup": walls["full"] / walls["fast"],
    }
    return IterationOutcome(
        cycles=cycles, checks=checks, info=info, wall=walls["fast"],
    )


# ---- single-seed replay ----------------------------------------------

def seed_replay(params: dict[str, int]) -> IterationOutcome:
    """Replay a recorded trace through a fresh dummy VM."""
    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    hv = manager.hv
    cycles_before = hv.clock.now
    start = time.perf_counter()
    replay = manager.replay_trace(
        session.trace, from_snapshot=session.snapshot,
        record_metrics=False,
    )
    wall = time.perf_counter() - start
    cycles = hv.clock.now - cycles_before
    checks: dict[str, object] = {
        "seeds": len(replay.results),
        "completed": replay.completed,
        "replay_cycles": replay.wall_cycles,
    }
    info = {"seeds_per_second": replay.completed / wall}
    return IterationOutcome(
        cycles=cycles, checks=checks, info=info, wall=wall,
    )


# ---- fuzzing throughput ----------------------------------------------

def _fuzz_round(
    arch: str, fast: bool, params: dict[str, int]
) -> tuple[float, int, list[FuzzResult], int]:
    """One serial fuzzing run; returns (wall, cycles, results, execs)."""
    manager = IrisManager(arch=arch, fast_reset=fast)
    session = _record(manager, params["exits"])
    cases = plan_test_cases(
        session.trace, list(_REASONS), areas=(MutationArea.VMCS,),
        n_mutations=params["mutations"], rng=random.Random(0),
    )
    fuzzer = IrisFuzzer(
        manager, rng=random.Random(1), fast_reset=fast
    )
    hv = manager.hv
    results: list[FuzzResult] = []
    execs = 0
    cycles_before = hv.clock.now
    start = time.perf_counter()
    for case in cases:
        # Rounds of the same case run back-to-back, the way a fuzzer
        # keeps drawing mutation batches from one target state — the
        # access pattern the fast-reset target-state cache serves.
        for _ in range(params["rounds"]):
            results.append(fuzzer.run_test_case(
                case, from_snapshot=session.snapshot
            ))
            # Submissions per case: the replayed prefix, the unmutated
            # baseline, and every mutation (paper Fig. 11).
            execs += case.seed_index + 1 + case.n_mutations
    wall = time.perf_counter() - start
    return wall, hv.clock.now - cycles_before, results, execs


def _fuzz_exec(arch: str, params: dict[str, int]) -> IterationOutcome:
    wall_fast, cycles_fast, results_fast, execs = _fuzz_round(
        arch, True, params
    )
    wall_full, cycles_full, results_full, _ = _fuzz_round(
        arch, False, params
    )

    def fingerprint(results: list[FuzzResult]) -> tuple[int, ...]:
        return (
            sum(r.mutations_run for r in results),
            sum(r.new_loc for r in results),
            sum(r.vm_crashes for r in results),
            sum(r.hypervisor_crashes for r in results),
        )

    fast_print = fingerprint(results_fast)
    full_print = fingerprint(results_full)
    # Crash tallies and mutation counts must agree between the modes
    # even across repeated cases; coverage accounting may differ there
    # (the cached baseline vs. a phase-drifted re-measured one — see
    # the fuzzer's fast-reset notes), so new_loc is pinned per mode.
    checks: dict[str, object] = {
        "mutations": fast_print[0],
        "new_loc": fast_print[1],
        "new_loc_full": full_print[1],
        "vm_crashes": fast_print[2],
        "hypervisor_crashes": fast_print[3],
        "crashes_match_full": fast_print[2:] == full_print[2:]
        and fast_print[0] == full_print[0],
        "cycles_full_minus_fast": cycles_full - cycles_fast,
    }
    info = {
        "execs_per_second_fast": execs / wall_fast,
        "execs_per_second_full": execs / wall_full,
        "speedup": wall_full / wall_fast,
    }
    return IterationOutcome(
        cycles=cycles_fast, checks=checks, info=info, wall=wall_fast,
    )


def fuzz_exec(params: dict[str, int]) -> IterationOutcome:
    """Serial fuzz-loop throughput on VT-x, fast reset vs. rebuild."""
    return _fuzz_exec("vmx", params)


def fuzz_exec_svm(params: dict[str, int]) -> IterationOutcome:
    """Serial fuzz-loop throughput on SVM, fast reset vs. rebuild."""
    return _fuzz_exec("svm", params)


# ---- campaign merge --------------------------------------------------

def campaign_merge(params: dict[str, int]) -> IterationOutcome:
    """Sharded campaign through the inline (jobs=1) hermetic path."""
    from repro.fuzz.parallel import ParallelCampaign

    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    cases = plan_test_cases(
        session.trace, list(_REASONS), areas=(MutationArea.VMCS,),
        n_mutations=params["mutations"], rng=random.Random(0),
    )
    campaign = ParallelCampaign(
        session.trace, session.snapshot, cases,
        campaign_seed=0, jobs=1,
        shards_per_cell=params["shards"],
    )
    start = time.perf_counter()
    outcome = campaign.run()
    wall = time.perf_counter() - start
    tallies = outcome.crash_tallies()
    checks: dict[str, object] = {
        "cells": len(outcome.results),
        "abandoned": len(outcome.abandoned_cells),
        "new_loc": outcome.merged_coverage().loc,
        "vm_crashes": tallies["vm-crash"],
        "hypervisor_crashes": tallies["hypervisor-crash"],
        "corpus": len(outcome.merged_corpus()),
    }
    info = {
        "mutations_per_second": outcome.stats.total_mutations / wall,
    }
    # The shards run on hermetic per-shard hypervisors whose clocks are
    # not observable here; zero is the (deterministic) outer-clock cost.
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=wall,
    )


# ---- campaign checkpointing ------------------------------------------

def campaign_checkpoint(params: dict[str, int]) -> IterationOutcome:
    """Store-backed campaign control plane vs the bare engine.

    Three arms over the same campaign: the plain engine (no store),
    the controller checkpointing every wave to SQLite (the measured
    arm — its wall is gated, so checkpoint overhead regressions fail
    CI), and an interrupted-then-resumed run.  The checks pin both
    equivalences — store-backed output matches the bare engine, and
    the resumed campaign matches the uninterrupted one — so the gate
    catches correctness drift as well as cost drift.
    """
    import os
    import tempfile

    from repro.campaign import (
        CampaignController,
        CampaignInterrupted,
        CampaignStore,
    )
    from repro.fuzz.parallel import ParallelCampaign

    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    cases = plan_test_cases(
        session.trace, list(_REASONS), areas=(MutationArea.VMCS,),
        n_mutations=params["mutations"], rng=random.Random(0),
    )

    def engine() -> ParallelCampaign:
        return ParallelCampaign(
            session.trace, session.snapshot, cases,
            campaign_seed=0, jobs=1,
        )

    start = time.perf_counter()
    plain = engine().run()
    plain_wall = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "bench.db")
        start = time.perf_counter()
        with CampaignStore(db) as store:
            full = CampaignController(
                engine(), store, wave_size=1
            ).run()
        store_wall = time.perf_counter() - start

        db2 = os.path.join(tmp, "interrupted.db")
        with CampaignStore(db2) as store:
            try:
                CampaignController(
                    engine(), store, wave_size=1, crash_after_wave=0,
                ).run()
            except CampaignInterrupted:
                pass
        start = time.perf_counter()
        with CampaignStore(db2) as store:
            resumed = CampaignController(
                engine(), store, wave_size=1
            ).run(resume=True)
        resume_wall = time.perf_counter() - start

    def same(a, b) -> bool:
        return (
            a.results == b.results
            and a.merged_corpus() == b.merged_corpus()
            and a.merged_coverage().lines()
            == b.merged_coverage().lines()
        )

    tallies = full.crash_tallies()
    checks: dict[str, object] = {
        "cells": len(full.results),
        "waves": full.waves_total,
        "new_loc": full.merged_coverage().loc,
        "vm_crashes": tallies["vm-crash"],
        "hypervisor_crashes": tallies["hypervisor-crash"],
        "corpus": len(full.merged_corpus()),
        "store_matches_plain": same(full, plain),
        "resume_identical": same(resumed, full),
        "waves_resumed": resumed.waves_resumed,
    }
    info = {
        "checkpoint_overhead": store_wall / plain_wall,
        "resume_wall_seconds": resume_wall,
    }
    # Hermetic per-shard hypervisor clocks are not observable here;
    # zero is the (deterministic) outer-clock cost, as campaign_merge.
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=store_wall,
    )


# ---- differential fuzzing (cross-arch oracle) ------------------------

def differential_fuzz(params: dict[str, int]) -> IterationOutcome:
    """Cross-arch differential campaign: oracle cost + jobs invariance.

    Two arms over the same differential campaign (every mutant
    replayed on vmx natively and on svm via seed translation): serial
    (jobs=1, the measured arm) and pooled (jobs=2).  The checks pin
    the oracle's headline contract — the divergence set, the rendered
    report bytes, and the comparison tallies are jobs-invariant — plus
    the exact divergence and crash counts, so both correctness drift
    and silent oracle decay (zero seeds compared) fail CI.  The info
    records the oracle's wall overhead against a non-differential run
    of the identical campaign.
    """
    from repro.fuzz.differential import (
        iter_divergences,
        render_divergence_report,
    )
    from repro.fuzz.parallel import ParallelCampaign

    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    cases = plan_test_cases(
        session.trace, list(_REASONS), areas=(MutationArea.VMCS,),
        n_mutations=params["mutations"], rng=random.Random(0),
    )

    def engine(jobs: int, differential: bool) -> ParallelCampaign:
        return ParallelCampaign(
            session.trace, session.snapshot, cases,
            campaign_seed=0, jobs=jobs, arch="vmx",
            differential=differential,
        )

    start = time.perf_counter()
    plain = engine(1, False).run()
    plain_wall = time.perf_counter() - start

    start = time.perf_counter()
    serial = engine(1, True).run()
    serial_wall = time.perf_counter() - start
    pooled = engine(2, True).run()

    def report(outcome) -> str:
        return render_divergence_report(
            list(iter_divergences(outcome.results)),
            seeds_compared=sum(
                r.seeds_compared for r in outcome.results
            ),
            untranslatable_seeds=sum(
                r.untranslatable_seeds for r in outcome.results
            ),
        )

    seeds_compared = sum(r.seeds_compared for r in serial.results)
    divergences = sum(len(r.divergences) for r in serial.results)
    tallies = serial.crash_tallies()
    checks: dict[str, object] = {
        "cells": len(serial.results),
        "divergences": divergences,
        "seeds_compared": seeds_compared,
        "untranslatable_seeds": sum(
            r.untranslatable_seeds for r in serial.results
        ),
        "vm_crashes": tallies["vm-crash"],
        "hypervisor_crashes": tallies["hypervisor-crash"],
        "reports_jobs_invariant": (
            serial.results == pooled.results
            and [r.divergences for r in serial.results]
            == [r.divergences for r in pooled.results]
            and report(serial) == report(pooled)
        ),
        # The oracle must have actually compared something: a silent
        # translation regression would zero this out while every other
        # check still passes.
        "oracle_engaged": seeds_compared > 0 and divergences > 0,
    }
    info = {
        "mutations_per_second": serial.stats.total_mutations
        / serial_wall,
        "oracle_overhead": serial_wall / plain_wall,
    }
    # Hermetic per-shard hypervisor clocks are not observable here;
    # zero is the (deterministic) outer-clock cost, as campaign_merge.
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=serial_wall,
    )


# ---- remote wave (socket transport) ----------------------------------

def remote_wave(params: dict[str, int]) -> IterationOutcome:
    """Campaign over the socket worker transport vs the local path.

    Two arms over the same campaign: the inline (jobs=1) local
    transport, then the identical engine shipping every shard to an
    in-process socket worker through the full wire protocol —
    HELLO/ACK handshake, task/result codecs, heartbeats.  The checks
    pin transport byte-identity (the tentpole differential, gated on
    every CI run) plus zero liveness machinery on a healthy link; the
    info records the wire volume and the transport's wall overhead.
    """
    from repro.campaign import (
        SocketTransport,
        WorkerServer,
        WorkerTransport,
    )
    from repro.fuzz.parallel import ParallelCampaign

    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    cases = plan_test_cases(
        session.trace, list(_REASONS), areas=(MutationArea.VMCS,),
        n_mutations=params["mutations"], rng=random.Random(0),
    )

    def engine(
        transport: WorkerTransport | None = None,
    ) -> ParallelCampaign:
        return ParallelCampaign(
            session.trace, session.snapshot, cases,
            campaign_seed=0, jobs=1,
            shards_per_cell=params["shards"], transport=transport,
        )

    start = time.perf_counter()
    local = engine().run()
    local_wall = time.perf_counter() - start

    with WorkerServer(heartbeat_interval=0.2) as server:
        transport = SocketTransport(
            [server.address], backoff_base=0.01,
        )
        start = time.perf_counter()
        remote = engine(transport).run()
        remote_wall = time.perf_counter() - start

    tallies = remote.crash_tallies()
    checks: dict[str, object] = {
        "cells": len(remote.results),
        "new_loc": remote.merged_coverage().loc,
        "vm_crashes": tallies["vm-crash"],
        "hypervisor_crashes": tallies["hypervisor-crash"],
        "corpus": len(remote.merged_corpus()),
        "matches_local": (
            remote.results == local.results
            and remote.merged_corpus() == local.merged_corpus()
            and remote.merged_coverage().lines()
            == local.merged_coverage().lines()
        ),
        # A healthy link needs none of the liveness machinery.
        "reassignments": transport.stats.reassignments,
        "retries": transport.stats.retries,
    }
    info = {
        "mutations_per_second": remote.stats.total_mutations
        / remote_wall,
        "transport_overhead": remote_wall / local_wall,
        # Frame/byte counts include heartbeats, whose number depends
        # on wall time — informational, never gated.
        "wire_frames": float(transport.stats.frames),
        "wire_bytes": float(transport.stats.bytes),
    }
    # Shards run on hermetic per-shard hypervisors; zero is the
    # (deterministic) outer-clock cost, as in campaign_merge.
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=remote_wall,
    )


# ---- smart mutation engine -------------------------------------------

def smart_mutation(params: dict[str, int]) -> IterationOutcome:
    """Smart engine vs PoC stack at equal budget + determinism matrix.

    The acceptance gate for the structure-aware mutation engine.  One
    campaign plan, run twice at the identical execution budget — the
    PoC flat stack and the smart staged pipeline — with the check
    pinning that smart covers *strictly more* lines.  The remaining
    arms walk the smart engine through the determinism matrix the PoC
    stack already honors: jobs 1 vs 2, vmx vs svm, local vs socket
    transport, and interrupted-then-resumed via the campaign store —
    every pairing gated byte-identical.
    """
    import os
    import tempfile

    from repro.campaign import (
        CampaignController,
        CampaignInterrupted,
        CampaignStore,
        SocketTransport,
        WorkerServer,
    )
    from repro.campaign.transport import WorkerTransport
    from repro.fuzz.parallel import ParallelCampaign
    from repro.fuzz.testcase import FuzzTestCase

    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    svm_manager = IrisManager(arch="svm")
    svm_session = _record(svm_manager, params["exits"])

    def plan(sess: RecordingSession,
             engine_name: str) -> list[FuzzTestCase]:
        return plan_test_cases(
            sess.trace, list(_REASONS), areas=(MutationArea.VMCS,),
            n_mutations=params["mutations"], rng=random.Random(0),
            engine=engine_name,
        )

    def campaign(
        sess: RecordingSession,
        cases: list[FuzzTestCase],
        *,
        jobs: int = 1,
        arch: str = "vmx",
        transport: WorkerTransport | None = None,
    ) -> ParallelCampaign:
        return ParallelCampaign(
            sess.trace, sess.snapshot, cases,
            campaign_seed=0, jobs=jobs, arch=arch,
            transport=transport,
        )

    poc = campaign(session, plan(session, "poc")).run()
    smart_cases = plan(session, "smart")
    start = time.perf_counter()
    smart = campaign(session, smart_cases).run()
    smart_wall = time.perf_counter() - start
    smart_jobs2 = campaign(session, smart_cases, jobs=2).run()

    svm_cases = plan(svm_session, "smart")
    svm_serial = campaign(svm_session, svm_cases, arch="svm").run()
    svm_pooled = campaign(
        svm_session, svm_cases, jobs=2, arch="svm"
    ).run()

    with WorkerServer(heartbeat_interval=0.2) as server:
        transport = SocketTransport(
            [server.address], backoff_base=0.01,
        )
        remote = campaign(
            session, smart_cases, transport=transport
        ).run()

    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "smart.db")
        with CampaignStore(db) as store:
            try:
                CampaignController(
                    campaign(session, smart_cases), store,
                    wave_size=1, crash_after_wave=0,
                ).run()
            except CampaignInterrupted:
                pass
        with CampaignStore(db) as store:
            resumed = CampaignController(
                campaign(session, smart_cases), store, wave_size=1,
            ).run(resume=True)

    def same(a, b) -> bool:
        return (
            a.results == b.results
            and a.merged_corpus() == b.merged_corpus()
            and a.merged_coverage().lines()
            == b.merged_coverage().lines()
        )

    poc_loc = poc.merged_coverage().loc
    smart_loc = smart.merged_coverage().loc
    tallies = smart.crash_tallies()
    checks: dict[str, object] = {
        "cells": len(smart.results),
        "poc_new_loc": poc_loc,
        "smart_new_loc": smart_loc,
        # The headline gate: strictly more coverage from the same
        # number of executions.
        "smart_strictly_beats_poc": smart_loc > poc_loc,
        "equal_budget": (
            poc.stats.total_mutations == smart.stats.total_mutations
        ),
        "vm_crashes": tallies["vm-crash"],
        "hypervisor_crashes": tallies["hypervisor-crash"],
        "corpus": len(smart.merged_corpus()),
        # The smart determinism matrix, all byte-identical.
        "jobs_invariant": same(smart, smart_jobs2),
        "svm_jobs_invariant": same(svm_serial, svm_pooled),
        "socket_identical": same(remote, smart),
        "resume_identical": same(resumed, smart),
        "waves_resumed": resumed.waves_resumed,
    }
    info = {
        "mutations_per_second": smart.stats.total_mutations
        / smart_wall,
        "coverage_gain_loc": float(smart_loc - poc_loc),
    }
    # Hermetic per-shard hypervisor clocks are not observable here;
    # zero is the (deterministic) outer-clock cost, as campaign_merge.
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=smart_wall,
    )


# ---- data-plane microbenchmarks --------------------------------------
#
# Both scenarios race the current data-plane implementation against a
# faithful in-file replica of what it replaced (the set-of-tuples
# CoverageMap; the per-entry frozen-dataclass seed codec).  The replica
# is the baseline arm, so the recorded speedup keeps measuring the real
# before/after — not a strawman — and the checks pin exact behavioral
# parity between the arms on every run.


class _LegacySetCoverage:
    """The pre-bitmap ``CoverageMap``: a set of (file, line) tuples."""

    __slots__ = ("_lines",)

    def __init__(self) -> None:
        self._lines: set[tuple[str, int]] = set()

    def hit(self, block: SourceBlock) -> None:
        self._lines.update(block.lines())

    @property
    def loc(self) -> int:
        return sum(1 for f, _ in self._lines if f != IRIS_FILE)

    @classmethod
    def union_all(
        cls, maps: Iterable["_LegacySetCoverage"]
    ) -> "_LegacySetCoverage":
        merged = cls()
        for cov in maps:
            merged._lines |= cov._lines
        return merged


def coverage_union(params: dict[str, int]) -> IterationOutcome:
    """Bitmap coverage hit/union/loc vs the legacy set-of-tuples map.

    Simulates the campaign access pattern: many shard maps each hit a
    deterministic sequence of blocks (with heavy overlap), then the
    shards are unioned and counted — exactly what every parallel merge
    does per cell.
    """
    rng = random.Random(2)
    blocks: list[SourceBlock] = []
    for file in INSTRUMENTED_FILES:
        allocator = BlockAllocator(file)
        for _ in range(params["blocks_per_file"]):
            blocks.append(allocator.block(rng.randrange(1, 9)))
    hit_plan = [
        [rng.randrange(len(blocks)) for _ in range(params["hits"])]
        for _ in range(params["maps"])
    ]

    # Interleaved best-of-rounds, as in :func:`seed_codec`: per-arm
    # minima of a deterministic workload measure the code, not the
    # scheduler.
    rounds = 3
    wall_new = wall_old = float("inf")
    merged_new = CoverageMap()
    merged_old = _LegacySetCoverage()
    loc_new = loc_old = 0
    for _ in range(rounds):
        shards_new = []
        merged_new = CoverageMap()
        start = time.perf_counter()
        shards_new = []
        for plan in hit_plan:
            cov = CoverageMap()
            hit = cov.hit
            for index in plan:
                hit(blocks[index])
            shards_new.append(cov)
        merged_new = CoverageMap.union_all(shards_new)
        loc_new = merged_new.loc
        wall_new = min(wall_new, time.perf_counter() - start)

        shards_old = []
        merged_old = _LegacySetCoverage()
        start = time.perf_counter()
        shards_old = []
        for plan in hit_plan:
            legacy = _LegacySetCoverage()
            hit_old = legacy.hit
            for index in plan:
                hit_old(blocks[index])
            shards_old.append(legacy)
        merged_old = _LegacySetCoverage.union_all(shards_old)
        loc_old = merged_old.loc
        wall_old = min(wall_old, time.perf_counter() - start)

    hits = params["maps"] * params["hits"]
    checks: dict[str, object] = {
        "maps": params["maps"],
        "merged_loc": loc_new,
        "loc_matches_legacy": loc_new == loc_old,
        "lines_match_legacy": (
            merged_new.lines() == frozenset(merged_old._lines)
        ),
    }
    info = {
        "hits_per_second_new": hits / wall_new,
        "hits_per_second_legacy": hits / wall_old,
        "speedup": wall_old / wall_new,
    }
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=wall_new,
    )


_LEGACY_ENTRY_STRUCT = struct.Struct("<BBQ")


@dataclass(frozen=True)
class _LegacyEntry:
    """The pre-batching seed entry: frozen dataclass, per-entry codec."""

    flag: SeedFlag
    encoding: int
    value: int

    def pack(self) -> bytes:
        return _LEGACY_ENTRY_STRUCT.pack(
            int(self.flag), self.encoding, self.value & (1 << 64) - 1
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "_LegacyEntry":
        try:
            flag, encoding, value = _LEGACY_ENTRY_STRUCT.unpack(raw)
            kind = SeedFlag(flag)
        except (struct.error, ValueError) as exc:
            raise SeedFormatError(f"bad seed entry: {exc}") from exc
        try:
            if kind is SeedFlag.GPR:
                GPR(encoding)
            else:
                field_by_index(encoding)
        except ValueError:
            raise SeedFormatError(
                f"bad seed entry: encoding {encoding}"
            ) from None
        return cls(kind, encoding, value)


def _legacy_pack_seed(
    exit_reason: int, entries: list[_LegacyEntry]
) -> bytes:
    header = struct.pack("<HH", exit_reason & 0xFFFF, len(entries))
    return header + b"".join(e.pack() for e in entries)


def _legacy_unpack_seed(
    blob: bytes,
) -> tuple[int, list[_LegacyEntry]]:
    buf = io.BytesIO(blob)
    header = buf.read(4)
    if len(header) != 4:
        raise SeedFormatError("truncated seed header")
    exit_reason, count = struct.unpack("<HH", header)
    entries = []
    for _ in range(count):
        raw = buf.read(SEED_ENTRY_SIZE)
        if len(raw) != SEED_ENTRY_SIZE:
            raise SeedFormatError("truncated seed entry")
        entries.append(_LegacyEntry.unpack(raw))
    if buf.read(1):
        raise SeedFormatError("trailing bytes")
    return exit_reason, entries


def seed_codec(params: dict[str, int]) -> IterationOutcome:
    """Batched seed pack/unpack vs the legacy per-entry codec.

    Seeds follow the paper's worst-case shape (15 GPR entries plus the
    VMCS-op budget, §VI-D).  The checks pin byte-identical wire output
    and triple-identical decode between the arms.
    """
    rng = random.Random(3)
    gprs = list(GPR)
    seeds: list[VMSeed] = []
    for _ in range(params["seeds"]):
        entries = [
            SeedEntry.for_gpr(g, rng.getrandbits(64)) for g in gprs
        ]
        entries.extend(
            SeedEntry(
                SeedFlag.VMCS_READ,
                rng.randrange(len(ALL_FIELDS)),
                rng.getrandbits(64),
            )
            for _ in range(params["vmcs_ops"])
        )
        seeds.append(VMSeed(
            exit_reason=rng.randrange(1 << 16), entries=entries,
        ))
    legacy_seeds = [
        (s.exit_reason, [_LegacyEntry(*e) for e in s.entries])
        for s in seeds
    ]

    # Each arm's wall is the best of several interleaved rounds: the
    # codecs are deterministic, so per-arm minima measure the code and
    # not the scheduler, and the speedup of minima stays a property of
    # the code rather than of the machine's mood.  The previous round's
    # objects are dropped *before* starting a timer so deallocation
    # never lands inside a timed window.
    rounds = 7
    wall_new_pack = wall_new_unpack = float("inf")
    wall_old_pack = wall_old_unpack = float("inf")
    blobs_new: list[bytes] = []
    blobs_old: list[bytes] = []
    decoded_new: list[VMSeed] = []
    decoded_old: list[tuple[int, list[_LegacyEntry]]] = []
    for _ in range(rounds):
        blobs_new = []
        start = time.perf_counter()
        blobs_new = [s.pack() for s in seeds]
        wall_new_pack = min(wall_new_pack, time.perf_counter() - start)
        decoded_new = []
        start = time.perf_counter()
        decoded_new = [VMSeed.from_bytes(b) for b in blobs_new]
        wall_new_unpack = min(
            wall_new_unpack, time.perf_counter() - start
        )

        blobs_old = []
        start = time.perf_counter()
        blobs_old = [
            _legacy_pack_seed(reason, entries)
            for reason, entries in legacy_seeds
        ]
        wall_old_pack = min(wall_old_pack, time.perf_counter() - start)
        decoded_old = []
        start = time.perf_counter()
        decoded_old = [_legacy_unpack_seed(b) for b in blobs_old]
        wall_old_unpack = min(
            wall_old_unpack, time.perf_counter() - start
        )
    pack_speedup = wall_old_pack / wall_new_pack
    unpack_speedup = wall_old_unpack / wall_new_unpack
    total_speedup = (wall_old_pack + wall_old_unpack) / (
        wall_new_pack + wall_new_unpack
    )

    total_bytes = sum(len(b) for b in blobs_new)
    digest = hashlib.sha256()
    for blob in blobs_new:
        digest.update(blob)
    wall_new = wall_new_pack + wall_new_unpack
    wall_old = wall_old_pack + wall_old_unpack
    checks: dict[str, object] = {
        "seeds": len(seeds),
        "entries_total": sum(len(s.entries) for s in seeds),
        "blob_bytes": total_bytes,
        "blob_digest": digest.hexdigest()[:16],
        "bytes_match_legacy": blobs_new == blobs_old,
        "roundtrip_identical": decoded_new == seeds,
        "roundtrip_matches_legacy": all(
            reason == s.exit_reason
            and len(entries) == len(s.entries)
            and all(
                (e.flag, e.encoding, e.value) == tuple(n)
                for e, n in zip(entries, s.entries)
            )
            for (reason, entries), s in zip(decoded_old, seeds)
        ),
    }
    info = {
        "mb_per_second_new": total_bytes / wall_new / 1e6,
        "mb_per_second_legacy": total_bytes / wall_old / 1e6,
        "pack_speedup": pack_speedup,
        "unpack_speedup": unpack_speedup,
        "speedup": total_speedup,
    }
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=wall_new,
    )


def trace_io(params: dict[str, int]) -> IterationOutcome:
    """Streamed IRISTRC2 trace I/O vs the per-record IRISTRC1 path.

    Three hot regions, each the best of several interleaved rounds:
    the full-file write (streamed batches vs four small writes plus a
    JSON metrics encode per record), the cold index-only
    ``reason_histogram()`` scan (footer index vs eager full decode),
    and random-access seeks into the file.  Checks pin the v2 file's
    byte digest, decode-for-decode record identity with the legacy
    loader, and — via the reader's decode counter — that the
    histogram touched zero payload bytes.  The speedups themselves are
    wall-derived and live in ``info`` (the committed baseline records
    the streamed write beating the legacy path >=2x); putting them in
    ``checks`` would make the deterministic fingerprint flap with
    machine noise.
    """
    import os
    import tempfile

    from repro.core.seed import ExitMetrics, Trace, VMExitRecord
    from repro.core.tracestore import TraceReader, write_trace

    rng = random.Random(11)
    gprs = list(GPR)
    # Realistic hypervisor source paths: the legacy JSON codec
    # re-encodes every name per line per record, the v2 name table
    # interns each once.
    cover_files = [
        f"hypervisor/arch/x86/vmx/handlers/exit_{i:02d}_dispatch.c"
        for i in range(24)
    ]
    records: list[VMExitRecord] = []
    for i in range(params["records"]):
        entries = [
            SeedEntry.for_gpr(g, rng.getrandbits(64)) for g in gprs
        ]
        entries.extend(
            SeedEntry(
                SeedFlag.VMCS_READ,
                rng.randrange(len(ALL_FIELDS)),
                rng.getrandbits(64),
            )
            for _ in range(params["vmcs_ops"])
        )
        seed = VMSeed(
            exit_reason=rng.randrange(60), entries=entries,
        )
        metrics = ExitMetrics(
            vmwrites=[
                (field_by_index(rng.randrange(len(ALL_FIELDS))),
                 rng.getrandbits(64))
                for _ in range(6)
            ],
            coverage_lines=frozenset(
                (rng.choice(cover_files), rng.randrange(4000))
                for _ in range(params["coverage_lines"])
            ),
            handler_cycles=rng.getrandbits(32),
            guest_cycles=rng.getrandbits(40),
        )
        records.append(VMExitRecord(seed=seed, metrics=metrics))
    trace = Trace(workload="bench", records=records)
    seeks = [
        rng.randrange(len(records)) for _ in range(params["seeks"])
    ]

    rounds = 5
    wall_v1_write = wall_v2_write = float("inf")
    wall_v1_hist = wall_v2_hist = float("inf")
    wall_v1_seek = wall_v2_seek = float("inf")
    hist_v1: dict[str, int] = {}
    hist_v2: dict[str, int] = {}
    hist_decoded = -1
    seeks_v1: list[VMExitRecord] = []
    seeks_v2: list[VMExitRecord] = []
    v2_bytes = b""
    reloaded = Trace(workload="")
    with tempfile.TemporaryDirectory(prefix="iris-bench-") as tmp:
        v1 = os.path.join(tmp, "t.iris")
        v2 = os.path.join(tmp, "t.iris2")
        for _ in range(rounds):
            start = time.perf_counter()
            trace.save(v1)
            wall_v1_write = min(
                wall_v1_write, time.perf_counter() - start
            )
            start = time.perf_counter()
            write_trace(trace, v2)
            wall_v2_write = min(
                wall_v2_write, time.perf_counter() - start
            )

            # Cold exit-reason histogram: the corpus-triage question
            # ("what's in this file?") that should not pay full decode.
            start = time.perf_counter()
            hist_v1 = Trace.load(v1).reason_histogram()
            wall_v1_hist = min(
                wall_v1_hist, time.perf_counter() - start
            )
            start = time.perf_counter()
            with TraceReader(v2) as reader:
                hist_v2 = reader.reason_histogram()
                hist_decoded = reader.stats.records_decoded
            wall_v2_hist = min(
                wall_v2_hist, time.perf_counter() - start
            )

            # Random-access seeks into the stored trace.
            start = time.perf_counter()
            eager = Trace.load(v1)
            seeks_v1 = [eager.records[i] for i in seeks]
            wall_v1_seek = min(
                wall_v1_seek, time.perf_counter() - start
            )
            start = time.perf_counter()
            with TraceReader(v2) as reader:
                seeks_v2 = [reader[i] for i in seeks]
            wall_v2_seek = min(
                wall_v2_seek, time.perf_counter() - start
            )
        v2_bytes = open(v2, "rb").read()
        v1_size = os.path.getsize(v1)
        with TraceReader(v2) as reader:
            reloaded = reader.materialize()

    write_speedup = wall_v1_write / wall_v2_write
    checks: dict[str, object] = {
        "records": len(records),
        "v2_file_bytes": len(v2_bytes),
        "v2_digest": hashlib.sha256(v2_bytes).hexdigest()[:16],
        "histogram_matches_legacy": hist_v2 == hist_v1,
        "histogram_decoded_records": hist_decoded,
        "seeks_match_legacy": seeks_v2 == seeks_v1,
        "roundtrip_identical": reloaded.records == records,
    }
    info = {
        "write_speedup": write_speedup,
        "histogram_speedup": wall_v1_hist / wall_v2_hist,
        "seek_speedup": wall_v1_seek / wall_v2_seek,
        "write_mb_per_second": len(v2_bytes) / wall_v2_write / 1e6,
        "v1_file_bytes": float(v1_size),
    }
    wall = wall_v2_write + wall_v2_hist + wall_v2_seek
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=wall,
    )


# ---- registry --------------------------------------------------------

class Scenario:
    """A named scenario with its default parameters."""

    def __init__(
        self,
        name: str,
        fn: ScenarioFn,
        params: dict[str, int],
        description: str,
    ) -> None:
        self.name = name
        self.fn = fn
        self.params = dict(params)
        self.description = description


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "snapshot_roundtrip", snapshot_roundtrip,
            {"exits": 120, "iters": 60},
            "take_snapshot + drift + restore_snapshot, fast vs full",
        ),
        Scenario(
            "seed_replay", seed_replay,
            {"exits": 400},
            "replay a recorded trace through a fresh dummy VM",
        ),
        Scenario(
            "fuzz_exec", fuzz_exec,
            {"exits": 160, "mutations": 6, "rounds": 4},
            "serial fuzz-loop exec/s on VT-x, fast reset vs rebuild",
        ),
        Scenario(
            "fuzz_exec_svm", fuzz_exec_svm,
            {"exits": 160, "mutations": 6, "rounds": 4},
            "serial fuzz-loop exec/s on SVM, fast reset vs rebuild",
        ),
        Scenario(
            "campaign_merge", campaign_merge,
            {"exits": 160, "mutations": 12, "shards": 4},
            "sharded campaign + deterministic merge (jobs=1 inline)",
        ),
        Scenario(
            "campaign_checkpoint", campaign_checkpoint,
            {"exits": 160, "mutations": 12},
            "store-backed checkpoint/resume control plane vs bare "
            "engine",
        ),
        Scenario(
            "differential_fuzz", differential_fuzz,
            {"exits": 160, "mutations": 12},
            "cross-arch differential campaign: oracle overhead + "
            "jobs-invariant divergence reports",
        ),
        Scenario(
            "remote_wave", remote_wave,
            {"exits": 160, "mutations": 12, "shards": 2},
            "campaign wave over the socket worker transport vs "
            "local (byte-identity + overhead)",
        ),
        Scenario(
            "smart_mutation", smart_mutation,
            {"exits": 160, "mutations": 24},
            "structure-aware engine vs PoC stack at equal budget + "
            "the smart determinism matrix (jobs/arch/transport/"
            "resume)",
        ),
        Scenario(
            "coverage_union", coverage_union,
            {"blocks_per_file": 24, "maps": 128, "hits": 2000},
            "bitmap CoverageMap hit/union/loc vs legacy set-of-tuples",
        ),
        Scenario(
            "seed_codec", seed_codec,
            {"seeds": 1500, "vmcs_ops": 32},
            "batched zero-copy seed codec vs legacy per-entry codec",
        ),
        Scenario(
            "trace_io", trace_io,
            {
                "records": 1200, "vmcs_ops": 16,
                "coverage_lines": 32, "seeks": 64,
            },
            "streamed IRISTRC2 write + lazy index-only reads vs the "
            "per-record IRISTRC1 save/load path",
        ),
    )
}
