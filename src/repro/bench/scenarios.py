"""The benchmarked scenarios.

Each scenario builds its whole world from scratch (fresh simulated
hypervisor, fixed RNG seeds) so its deterministic outputs are pure
functions of the parameter dict, then measures the wall time of the
hot region only (setup like recording the input trace is excluded).

The ``fuzz_exec`` scenarios are the headline: they run the same serial
fuzzing loop twice — fast-reset on, then off — and report both
throughputs plus the speedup.  Their ``checks`` pin crash/mutation
parity between the modes and the (deterministic) cycle delta of the
fast path's batched replay charges; byte-identical coverage parity is
the campaign-level differential tests' job, where every shard reaches
its target state exactly once.
"""

from __future__ import annotations

import random
import time

from repro.bench.runner import IterationOutcome, ScenarioFn
from repro.core.manager import IrisManager, RecordingSession
from repro.core.snapshot import restore_snapshot, take_snapshot
from repro.fuzz.fuzzer import FuzzResult, IrisFuzzer
from repro.fuzz.mutations import MutationArea
from repro.fuzz.testcase import plan_test_cases
from repro.vmx.exit_reasons import ExitReason

#: Exit reasons targeted by the fuzzing scenarios (reasons absent from
#: the recorded trace are skipped by the planner, as in Table I).
_REASONS = (
    ExitReason.CPUID,
    ExitReason.RDTSC,
    ExitReason.HLT,
    ExitReason.VMCALL,
)


def _record(
    manager: IrisManager, exits: int
) -> RecordingSession:
    """Record the standard input trace (setup, never measured)."""
    return manager.record_workload(
        "cpu-bound", n_exits=exits, precondition="boot",
        store_metrics=False,
    )


# ---- snapshot take/restore -------------------------------------------

def snapshot_roundtrip(params: dict[str, int]) -> IterationOutcome:
    """take_snapshot + one tracked drift + restore, fast and full.

    Cycles come from the drift (one seed submission per roundtrip);
    take/restore themselves are timeline-invariant.  The full loop
    runs after the fast loop on the same clock, so its submissions
    charge at different TSC phases — ``cycles_full_minus_fast`` is a
    nonzero but deterministic number, pinned like every other check.
    """
    iters = params["iters"]
    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    replayer = manager.create_dummy_vm(from_snapshot=session.snapshot)
    dummy = manager.dummy_vm
    assert dummy is not None
    hv = manager.hv
    seed = session.trace.records[0].seed

    walls: dict[str, float] = {}
    cycle_counts: dict[str, int] = {}
    for mode, fast in (("fast", True), ("full", False)):
        cycles_before = hv.clock.now
        start = time.perf_counter()
        for _ in range(iters):
            snap = take_snapshot(hv, dummy)
            replayer.submit(seed)
            restore_snapshot(hv, dummy, snap, fast=fast)
        walls[mode] = time.perf_counter() - start
        cycle_counts[mode] = hv.clock.now - cycles_before

    cycles = cycle_counts["fast"]
    checks: dict[str, object] = {
        "cycles_per_iter": cycles // iters,
        "cycles_full_minus_fast": cycle_counts["full"] - cycles,
        "final_rip": dummy.vcpus[0].regs.rip,
    }
    info = {
        "roundtrips_per_second_fast": iters / walls["fast"],
        "roundtrips_per_second_full": iters / walls["full"],
        "restore_speedup": walls["full"] / walls["fast"],
    }
    return IterationOutcome(
        cycles=cycles, checks=checks, info=info, wall=walls["fast"],
    )


# ---- single-seed replay ----------------------------------------------

def seed_replay(params: dict[str, int]) -> IterationOutcome:
    """Replay a recorded trace through a fresh dummy VM."""
    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    hv = manager.hv
    cycles_before = hv.clock.now
    start = time.perf_counter()
    replay = manager.replay_trace(
        session.trace, from_snapshot=session.snapshot,
        record_metrics=False,
    )
    wall = time.perf_counter() - start
    cycles = hv.clock.now - cycles_before
    checks: dict[str, object] = {
        "seeds": len(replay.results),
        "completed": replay.completed,
        "replay_cycles": replay.wall_cycles,
    }
    info = {"seeds_per_second": replay.completed / wall}
    return IterationOutcome(
        cycles=cycles, checks=checks, info=info, wall=wall,
    )


# ---- fuzzing throughput ----------------------------------------------

def _fuzz_round(
    arch: str, fast: bool, params: dict[str, int]
) -> tuple[float, int, list[FuzzResult], int]:
    """One serial fuzzing run; returns (wall, cycles, results, execs)."""
    manager = IrisManager(arch=arch, fast_reset=fast)
    session = _record(manager, params["exits"])
    cases = plan_test_cases(
        session.trace, list(_REASONS), areas=(MutationArea.VMCS,),
        n_mutations=params["mutations"], rng=random.Random(0),
    )
    fuzzer = IrisFuzzer(
        manager, rng=random.Random(1), fast_reset=fast
    )
    hv = manager.hv
    results: list[FuzzResult] = []
    execs = 0
    cycles_before = hv.clock.now
    start = time.perf_counter()
    for case in cases:
        # Rounds of the same case run back-to-back, the way a fuzzer
        # keeps drawing mutation batches from one target state — the
        # access pattern the fast-reset target-state cache serves.
        for _ in range(params["rounds"]):
            results.append(fuzzer.run_test_case(
                case, from_snapshot=session.snapshot
            ))
            # Submissions per case: the replayed prefix, the unmutated
            # baseline, and every mutation (paper Fig. 11).
            execs += case.seed_index + 1 + case.n_mutations
    wall = time.perf_counter() - start
    return wall, hv.clock.now - cycles_before, results, execs


def _fuzz_exec(arch: str, params: dict[str, int]) -> IterationOutcome:
    wall_fast, cycles_fast, results_fast, execs = _fuzz_round(
        arch, True, params
    )
    wall_full, cycles_full, results_full, _ = _fuzz_round(
        arch, False, params
    )

    def fingerprint(results: list[FuzzResult]) -> tuple[int, ...]:
        return (
            sum(r.mutations_run for r in results),
            sum(r.new_loc for r in results),
            sum(r.vm_crashes for r in results),
            sum(r.hypervisor_crashes for r in results),
        )

    fast_print = fingerprint(results_fast)
    full_print = fingerprint(results_full)
    # Crash tallies and mutation counts must agree between the modes
    # even across repeated cases; coverage accounting may differ there
    # (the cached baseline vs. a phase-drifted re-measured one — see
    # the fuzzer's fast-reset notes), so new_loc is pinned per mode.
    checks: dict[str, object] = {
        "mutations": fast_print[0],
        "new_loc": fast_print[1],
        "new_loc_full": full_print[1],
        "vm_crashes": fast_print[2],
        "hypervisor_crashes": fast_print[3],
        "crashes_match_full": fast_print[2:] == full_print[2:]
        and fast_print[0] == full_print[0],
        "cycles_full_minus_fast": cycles_full - cycles_fast,
    }
    info = {
        "execs_per_second_fast": execs / wall_fast,
        "execs_per_second_full": execs / wall_full,
        "speedup": wall_full / wall_fast,
    }
    return IterationOutcome(
        cycles=cycles_fast, checks=checks, info=info, wall=wall_fast,
    )


def fuzz_exec(params: dict[str, int]) -> IterationOutcome:
    """Serial fuzz-loop throughput on VT-x, fast reset vs. rebuild."""
    return _fuzz_exec("vmx", params)


def fuzz_exec_svm(params: dict[str, int]) -> IterationOutcome:
    """Serial fuzz-loop throughput on SVM, fast reset vs. rebuild."""
    return _fuzz_exec("svm", params)


# ---- campaign merge --------------------------------------------------

def campaign_merge(params: dict[str, int]) -> IterationOutcome:
    """Sharded campaign through the inline (jobs=1) hermetic path."""
    from repro.fuzz.parallel import ParallelCampaign

    manager = IrisManager(arch="vmx")
    session = _record(manager, params["exits"])
    cases = plan_test_cases(
        session.trace, list(_REASONS), areas=(MutationArea.VMCS,),
        n_mutations=params["mutations"], rng=random.Random(0),
    )
    campaign = ParallelCampaign(
        session.trace, session.snapshot, cases,
        campaign_seed=0, jobs=1,
        shards_per_cell=params["shards"],
    )
    start = time.perf_counter()
    outcome = campaign.run()
    wall = time.perf_counter() - start
    tallies = outcome.crash_tallies()
    checks: dict[str, object] = {
        "cells": len(outcome.results),
        "abandoned": len(outcome.abandoned_cells),
        "new_loc": outcome.merged_coverage().loc,
        "vm_crashes": tallies["vm-crash"],
        "hypervisor_crashes": tallies["hypervisor-crash"],
        "corpus": len(outcome.merged_corpus()),
    }
    info = {
        "mutations_per_second": outcome.stats.total_mutations / wall,
    }
    # The shards run on hermetic per-shard hypervisors whose clocks are
    # not observable here; zero is the (deterministic) outer-clock cost.
    return IterationOutcome(
        cycles=0, checks=checks, info=info, wall=wall,
    )


# ---- registry --------------------------------------------------------

class Scenario:
    """A named scenario with its default parameters."""

    def __init__(
        self,
        name: str,
        fn: ScenarioFn,
        params: dict[str, int],
        description: str,
    ) -> None:
        self.name = name
        self.fn = fn
        self.params = dict(params)
        self.description = description


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "snapshot_roundtrip", snapshot_roundtrip,
            {"exits": 120, "iters": 60},
            "take_snapshot + drift + restore_snapshot, fast vs full",
        ),
        Scenario(
            "seed_replay", seed_replay,
            {"exits": 400},
            "replay a recorded trace through a fresh dummy VM",
        ),
        Scenario(
            "fuzz_exec", fuzz_exec,
            {"exits": 160, "mutations": 6, "rounds": 4},
            "serial fuzz-loop exec/s on VT-x, fast reset vs rebuild",
        ),
        Scenario(
            "fuzz_exec_svm", fuzz_exec_svm,
            {"exits": 160, "mutations": 6, "rounds": 4},
            "serial fuzz-loop exec/s on SVM, fast reset vs rebuild",
        ),
        Scenario(
            "campaign_merge", campaign_merge,
            {"exits": 160, "mutations": 12, "shards": 4},
            "sharded campaign + deterministic merge (jobs=1 inline)",
        ),
    )
}
