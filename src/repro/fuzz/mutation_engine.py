"""Structure-aware mutation engine (ROADMAP: "coverage-guided
intelligent mutation engine").

The paper's PoC mutates blindly — ``iris-fuzz --engine poc`` keeps
that stack byte-for-byte.  ``--engine smart`` replaces it with a
staged pipeline in the NecoFuzz/VIA mould: mutators that understand
what a virtualization-interface field *means*.

Stages (one is chosen per mutant, weighted, from the case RNG):

* **dictionary** — substitute a value harvested from the recorded
  trace and the evolving corpus for the same ``(flag, encoding)``
  slot (:class:`SeedDictionary`), optionally nudged by ±1;
* **structural** — craft a semantically loaded value for the slot:
  CR0/CR4 mode-transition bit sets, packed segment descriptors
  (access rights, selectors, limits, bases), and exit-reason-specific
  qualification encodings in *both* field namespaces — VT-x exit
  qualifications and SVM EXITINFO1 layouts;
* **havoc** — a stack of 1..N of the PoC primitives (bit/byte flip,
  arithmetic);
* **splice** — cross over entry values from another queue entry,
  then continue from the spliced seed.

Energy is assigned per queue entry by a deterministic cost-aware
:class:`PowerSchedule` (formula in DESIGN.md §13): entries that found
more new coverage get more energy, entries whose handler burned more
cycles get less.

Determinism contract: every choice flows from the caller's seeded
``random.Random`` and from deterministically ordered state (sorted
dictionary values, queue append order), so a shard's mutant sequence
is a pure function of ``(case, arch, rng seed)`` — the same contract
the PoC stack honors, which is what lets ``--engine smart`` campaigns
stay byte-identical across jobs counts, transports, and resume.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.arch.fields import (
    ArchField,
    SEGMENT_AR_FIELDS,
    SEGMENT_BASE_FIELDS,
    SEGMENT_LIMIT_FIELDS,
    SEGMENT_SELECTOR_FIELDS,
)
from repro.core.seed import SeedEntry, SeedFlag, VMSeed
from repro.fuzz.mutations import (
    MUTATION_RULES,
    MutationArea,
    area_indices,
    arithmetic_mutation,
    bit_flip,
    byte_flip,
    value_width,
)
from repro.vmx.exit_reasons import ExitReason

if TYPE_CHECKING:  # circular at runtime: testcase imports ENGINE_NAMES
    from repro.fuzz.testcase import FuzzTestCase

#: Engine vocabulary, in CLI order (``iris-fuzz --engine``).
ENGINE_NAMES: tuple[str, ...] = ("poc", "smart")


# ---- structure tables -------------------------------------------------

# CR0 mode bits (Intel SDM vol. 3 §2.5 / AMD APM vol. 2 §3.1).
_CR0_PE = 1 << 0
_CR0_MP = 1 << 1
_CR0_EM = 1 << 2
_CR0_TS = 1 << 3
_CR0_ET = 1 << 4
_CR0_NE = 1 << 5
_CR0_WP = 1 << 16
_CR0_AM = 1 << 18
_CR0_NW = 1 << 29
_CR0_CD = 1 << 30
_CR0_PG = 1 << 31

#: Mode-transition CR0 values: the legal mode lattice (real →
#: protected → paged) plus the canonical *illegal* combinations
#: hypervisor CR0 handlers must reject (PG without PE, NW without CD).
CR0_MODE_VALUES: tuple[int, ...] = (
    0,                                       # real mode, all clear
    _CR0_PE | _CR0_ET,                       # protected, no paging
    _CR0_PE | _CR0_PG | _CR0_ET | _CR0_NE,   # paged protected mode
    _CR0_PE | _CR0_PG | _CR0_WP | _CR0_NE | _CR0_MP | _CR0_ET,
    _CR0_PG,                                 # PG without PE: invalid
    _CR0_NW,                                 # NW without CD: invalid
    _CR0_CD | _CR0_NW,                       # cache fully disabled
    _CR0_PE | _CR0_EM | _CR0_TS,             # FPU trap configuration
    _CR0_PE | _CR0_AM,                       # alignment-check arming
    0xFFFF_FFFF,                             # every legacy bit
    1 << 32,                                 # reserved upper bit
)

# CR4 feature bits.
_CR4_TSD = 1 << 2
_CR4_PSE = 1 << 4
_CR4_PAE = 1 << 5
_CR4_MCE = 1 << 6
_CR4_PGE = 1 << 7
_CR4_OSFXSR = 1 << 9
_CR4_UMIP = 1 << 11
_CR4_VMXE = 1 << 13
_CR4_SMXE = 1 << 14
_CR4_PCIDE = 1 << 17
_CR4_OSXSAVE = 1 << 18
_CR4_SMEP = 1 << 20
_CR4_SMAP = 1 << 21

#: Mode-transition CR4 values (paging flavors, virtualization enables,
#: supervisor hardening) plus combinations that are reserved or only
#: legal with specific CR0/EFER states.
CR4_MODE_VALUES: tuple[int, ...] = (
    0,
    _CR4_PAE,                                # long-mode prerequisite
    _CR4_PAE | _CR4_PGE | _CR4_PSE,
    _CR4_PCIDE,                              # PCIDE without PAE: invalid
    _CR4_VMXE,
    _CR4_VMXE | _CR4_SMXE,
    _CR4_SMEP | _CR4_SMAP | _CR4_UMIP,
    _CR4_OSFXSR | _CR4_OSXSAVE,
    _CR4_TSD | _CR4_MCE,
    0xFFFF_FFFF,
    1 << 32,
)

#: Interesting 64-bit constants for GPR slots: signedness boundaries
#: and the canonical-address frontier.
INTERESTING_GPR: tuple[int, ...] = (
    0, 1, 0x7F, 0x80, 0xFF, 0x7FFF, 0x8000, 0xFFFF,
    0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF,
    0x0000_7FFF_FFFF_FFFF,                   # last canonical low half
    0x0000_8000_0000_0000,                   # first non-canonical
    0xFFFF_7FFF_FFFF_FFFF,                   # last non-canonical
    0xFFFF_8000_0000_0000,                   # first canonical high half
    0x7FFF_FFFF_FFFF_FFFF, 0x8000_0000_0000_0000,
    0xFFFF_FFFF_FFFF_FFFF,
)

#: CPUID leaves worth steering RAX toward (basic, extended, and the
#: hypervisor leaf range).
CPUID_LEAVES: tuple[int, ...] = (
    0, 1, 2, 4, 7, 0xB, 0xD,
    0x4000_0000, 0x4000_0001,
    0x8000_0000, 0x8000_0002, 0x8000_0008,
)

#: Legacy I/O ports with real platform devices behind them.
_IO_PORTS: tuple[int, ...] = (
    0x20, 0x21, 0x40, 0x60, 0x64, 0x70, 0x71, 0x3F8, 0xCF8, 0xCFC,
)

#: Fallback qualification values for exit reasons without a dedicated
#: encoder (small indices, width boundaries).
_GENERIC_QUALIFICATIONS: tuple[int, ...] = (
    0, 1, 2, 3, 4, 8, 0xFF, 0x1000, 0xFFFF,
    1 << 31, 1 << 32, (1 << 64) - 1,
)

_CR0_FIELDS = frozenset((ArchField.GUEST_CR0, ArchField.CR0_READ_SHADOW))
_CR4_FIELDS = frozenset((ArchField.GUEST_CR4, ArchField.CR4_READ_SHADOW))
_SEG_AR = frozenset(SEGMENT_AR_FIELDS)
_SEG_SELECTOR = frozenset(SEGMENT_SELECTOR_FIELDS)
_SEG_LIMIT = frozenset(SEGMENT_LIMIT_FIELDS)
_SEG_BASE = frozenset(SEGMENT_BASE_FIELDS)


# ---- structural crafters ---------------------------------------------

def craft_cr0(rng: random.Random) -> int:
    """A mode-transition CR0 value (legal lattice + illegal combos)."""
    return rng.choice(CR0_MODE_VALUES)


def craft_cr4(rng: random.Random) -> int:
    """A mode-transition CR4 value."""
    return rng.choice(CR4_MODE_VALUES)


def pack_segment_ar(rng: random.Random) -> int:
    """Pack a VMX-format segment access-rights dword from components.

    Field layout (Intel SDM vol. 3 §25.4.1): type[3:0], S[4],
    DPL[6:5], P[7], AVL[12], L[13], D/B[14], G[15], unusable[16].
    """
    seg_type = rng.choice((0x0, 0x2, 0x3, 0x9, 0xB, 0xC, 0xF))
    descriptor = rng.randrange(2)
    dpl = rng.randrange(4)
    present = rng.randrange(2)
    avl = rng.randrange(2)
    long_mode = rng.randrange(2)
    default_big = rng.randrange(2)
    granularity = rng.randrange(2)
    unusable = rng.choice((0, 0, 0, 1))
    return (
        seg_type
        | descriptor << 4
        | dpl << 5
        | present << 7
        | avl << 12
        | long_mode << 13
        | default_big << 14
        | granularity << 15
        | unusable << 16
    )


def pack_segment_selector(rng: random.Random) -> int:
    """Pack a selector: index[15:3], table-indicator[2], RPL[1:0]."""
    index = rng.choice((0, 1, 2, 3, 8, 0x100, 0x1FFF))
    table = rng.randrange(2)
    rpl = rng.randrange(4)
    return index << 3 | table << 2 | rpl


def craft_segment_limit(rng: random.Random) -> int:
    """Limits at granularity boundaries (byte vs 4K-page units)."""
    return rng.choice((
        0, 1, 0xFFF, 0x1000, 0xFFFF, 0x10000, 0xF_FFFF,
        0xFFFF_F000, 0xFFFF_FFFF,
    ))


def craft_segment_base(rng: random.Random) -> int:
    """Bases at canonical-address and alignment boundaries."""
    return rng.choice((
        0, 0x1000, 0xFFFF_0000, 0xFFFF_FFFF,
        0x0000_7FFF_FFFF_F000, 0x0000_8000_0000_0000,
        0xFFFF_8000_0000_0000, 0xFFFF_FFFF_FFFF_F000,
    ))


def vmx_qualification(reason: ExitReason, rng: random.Random) -> int:
    """An exit-qualification value shaped for the VT-x encoding of
    ``reason`` (Intel SDM vol. 3 §28.2.1)."""
    if reason is ExitReason.CR_ACCESS:
        # cr[3:0], access-type[5:4], LMSW-operand[6], reg[11:8].
        cr = rng.choice((0, 3, 4, 8))
        access = rng.randrange(4)
        reg = rng.randrange(16)
        return cr | access << 4 | reg << 8
    if reason is ExitReason.IO_INSTRUCTION:
        # size[2:0], direction[3], string[4], REP[5], imm-operand[6],
        # port[31:16].
        size = rng.choice((0, 1, 3))
        direction = rng.randrange(2)
        string_op = rng.randrange(2)
        rep = rng.randrange(2)
        operand = rng.randrange(2)
        port = rng.choice(_IO_PORTS)
        return (
            size | direction << 3 | string_op << 4 | rep << 5
            | operand << 6 | port << 16
        )
    if reason is ExitReason.EPT_VIOLATION:
        # access r/w/x[2:0], permissions[5:3], valid-linear[7].
        access = 1 << rng.randrange(3)
        permitted = rng.randrange(8)
        valid_linear = rng.randrange(2)
        return access | permitted << 3 | valid_linear << 7
    return rng.choice(_GENERIC_QUALIFICATIONS)


def svm_exit_info(reason: ExitReason, rng: random.Random) -> int:
    """An EXITINFO1-shaped value for the SVM twin of ``reason``
    (AMD APM vol. 2, appendix C).  Seeds carry the neutral (VT-x)
    reason namespace on both backends, so the *reason* key is shared
    and only the value layout is per-arch."""
    if reason is ExitReason.CR_ACCESS:
        # MOV-CRx intercepts: GPR number[3:0]; bit 63 flags the
        # decode-assisted MOV-CR form.
        return rng.randrange(16) | rng.randrange(2) << 63
    if reason is ExitReason.IO_INSTRUCTION:
        # type(IN)[0], string[2], REP[3], size SZ8/16/32[6:4],
        # port[31:16].
        direction_in = rng.randrange(2)
        string_op = rng.randrange(2)
        rep = rng.randrange(2)
        size = 1 << rng.choice((4, 5, 6))
        port = rng.choice(_IO_PORTS)
        return (
            direction_in | string_op << 2 | rep << 3 | size
            | port << 16
        )
    if reason is ExitReason.EPT_VIOLATION:
        # Nested-page-fault error code: P/W/U/RSV/ID plus the
        # final-walk (bit 32) / guest-page-table (bit 33) qualifiers.
        code = rng.choice((0x0, 0x1, 0x2, 0x4, 0x9, 0x10))
        walk = rng.choice((0, 1 << 32, 1 << 33))
        return code | walk
    return rng.choice(_GENERIC_QUALIFICATIONS)


def qualification_value(
    reason: ExitReason, arch: str, rng: random.Random
) -> int:
    """Exit-reason-specific qualification in the backend's namespace."""
    if arch == "svm":
        return svm_exit_info(reason, rng)
    return vmx_qualification(reason, rng)


# ---- the harvested value dictionary ----------------------------------

class SeedDictionary:
    """Interesting constants per seed slot, harvested automatically.

    Keys are ``(flag, encoding)`` pairs — a GPR number or a compact
    VMCS field index — and values are the constants recorded seeds
    (and, during a campaign, corpus finds) actually carried there.
    Lookups return sorted tuples and the merge is a pure per-key set
    union, so harvesting is order-insensitive and jobs-invariant:
    ``harvest(a + b) == harvest(a).merge(harvest(b))`` (the property
    tests pin the full algebra).
    """

    def __init__(
        self,
        values: Mapping[tuple[int, int], Iterable[int]] | None = None,
    ) -> None:
        self._values: dict[tuple[int, int], set[int]] = {}
        self._sorted: dict[tuple[int, int], tuple[int, ...]] = {}
        if values:
            for (flag, encoding), vals in values.items():
                for value in vals:
                    self.add(flag, encoding, value)

    def add(self, flag: int, encoding: int, value: int) -> None:
        """Record one observed value for one slot (dedup'd)."""
        key = (int(flag), int(encoding))
        bucket = self._values.setdefault(key, set())
        if value not in bucket:
            bucket.add(value)
            self._sorted.pop(key, None)

    def feed(self, seed: VMSeed) -> None:
        """Harvest every entry of ``seed``."""
        for entry in seed.entries:
            self.add(int(entry.flag), entry.encoding, entry.value)

    @classmethod
    def harvest(cls, seeds: Iterable[VMSeed]) -> "SeedDictionary":
        """Build a dictionary from recorded seeds / corpus seeds."""
        dictionary = cls()
        for seed in seeds:
            dictionary.feed(seed)
        return dictionary

    def values_for(self, flag: int, encoding: int) -> tuple[int, ...]:
        """The slot's constants, sorted (deterministic pick order)."""
        key = (int(flag), int(encoding))
        cached = self._sorted.get(key)
        if cached is None:
            bucket = self._values.get(key)
            if bucket is None:
                return ()
            cached = tuple(sorted(bucket))
            self._sorted[key] = cached
        return cached

    def merge(self, other: "SeedDictionary") -> "SeedDictionary":
        """Order-insensitive union (new dictionary, inputs untouched)."""
        merged = SeedDictionary()
        for source in (self, other):
            for (flag, encoding), bucket in source._values.items():
                for value in bucket:
                    merged.add(flag, encoding, value)
        return merged

    def keys(self) -> tuple[tuple[int, int], ...]:
        return tuple(sorted(self._values))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._values.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedDictionary):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        return (
            f"SeedDictionary({len(self._values)} slots, "
            f"{len(self)} values)"
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys and values; exact round-trip)."""
        return json.dumps(
            {
                f"{flag}:{encoding}": list(self.values_for(flag, encoding))
                for flag, encoding in self.keys()
            },
            sort_keys=True, separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "SeedDictionary":
        payload = json.loads(text)
        dictionary = cls()
        for key, values in payload.items():
            flag_text, _, encoding_text = key.partition(":")
            for value in values:
                dictionary.add(
                    int(flag_text), int(encoding_text), int(value)
                )
        return dictionary


# ---- power schedule ---------------------------------------------------

@dataclass(frozen=True)
class PowerSchedule:
    """Deterministic cost-aware energy assignment (DESIGN.md §13).

    ``energy = clamp(base * (1 + new_loc) // (1 + cost_penalty),
    min, max)`` with ``cost_penalty = max(0, bit_length(cost_cycles)
    - cost_floor_bits)``: novelty buys energy linearly, handler cost
    taxes it logarithmically.  Pure integer arithmetic, so the value
    is identical on every platform and Python version.
    """

    base_energy: int = 8
    min_energy: int = 2
    max_energy: int = 64
    cost_floor_bits: int = 12

    def energy(self, new_loc: int, cost_cycles: int) -> int:
        penalty = max(
            max(cost_cycles, 0).bit_length() - self.cost_floor_bits, 0
        )
        raw = self.base_energy * (1 + max(new_loc, 0)) // (1 + penalty)
        return max(self.min_energy, min(self.max_energy, raw))


@dataclass(frozen=True)
class PowerQueueEntry:
    """One seed in the smart engine's queue."""

    seed: VMSeed
    new_loc: int
    cost_cycles: int
    depth: int


# ---- engines ----------------------------------------------------------

class MutationEngine:
    """What the fuzzers drive: a mutant source with a feedback edge."""

    name = "base"

    def next_mutant(self, rng: random.Random) -> VMSeed:
        raise NotImplementedError

    def feedback(
        self,
        mutant: VMSeed,
        *,
        new_loc: int,
        cost_cycles: int,
        crashed: bool = False,
    ) -> None:
        """Report one execution's outcome back to the engine."""

    @property
    def queue_size(self) -> int:
        return 1

    @property
    def max_depth(self) -> int:
        return 0


class PocEngine(MutationEngine):
    """The paper's flat stack, byte-for-byte.

    ``next_mutant`` performs exactly the call the pre-engine fuzzer
    loop made — ``MUTATION_RULES[rule](target_seed, area, rng)`` —
    consuming the identical RNG stream, so every existing baseline
    (bench checks, golden campaigns) is unchanged.
    """

    name = "poc"

    def __init__(self, case: "FuzzTestCase") -> None:
        self._mutate = MUTATION_RULES[case.mutation_rule]
        self._seed = case.target_seed
        self._area = case.area

    def next_mutant(self, rng: random.Random) -> VMSeed:
        return self._mutate(self._seed, self._area, rng)


class SmartEngine(MutationEngine):
    """The staged structure-aware pipeline."""

    name = "smart"

    #: Stage vocabulary with selection weights; splice is dropped from
    #: the draw while the queue has no partner to splice with.
    STAGES: tuple[str, ...] = (
        "dictionary", "structural", "havoc", "splice",
    )
    _STAGE_WEIGHTS: tuple[int, ...] = (4, 4, 3, 2)

    #: Queue ceiling — keeps long campaigns bounded; the cap is part
    #: of the deterministic contract (append order is deterministic,
    #: so which entries are kept is too).
    MAX_QUEUE = 256

    _HAVOC_OPS = (bit_flip, byte_flip, arithmetic_mutation)

    def __init__(
        self,
        case: "FuzzTestCase",
        arch: str = "vmx",
        schedule: PowerSchedule | None = None,
        max_havoc_stack: int = 3,
    ) -> None:
        if max_havoc_stack < 1:
            raise ValueError("max_havoc_stack must be >= 1")
        self.area = case.area
        self.reason = case.exit_reason
        self.arch = arch
        self.schedule = schedule or PowerSchedule()
        self.max_havoc_stack = max_havoc_stack
        # The automatic harvest: every recorded seed's constants,
        # keyed per slot.  Corpus finds feed in via ``feedback``.
        self.dictionary = SeedDictionary.harvest(
            record.seed for record in case.trace.records
        )
        base_cost = case.trace.records[case.seed_index] \
            .metrics.handler_cycles
        self.queue: list[PowerQueueEntry] = [PowerQueueEntry(
            seed=case.target_seed, new_loc=0,
            cost_cycles=base_cost, depth=0,
        )]
        self.executions = 0
        self.stage_counts: dict[str, int] = {s: 0 for s in self.STAGES}
        self._max_depth = 0
        self._current = self.queue[0]
        self._energy = 0

    # -- scheduling ----------------------------------------------------

    @property
    def queue_size(self) -> int:
        return len(self.queue)

    @property
    def max_depth(self) -> int:
        return self._max_depth

    def _select(self, rng: random.Random) -> PowerQueueEntry:
        """Pick the next queue entry: energy-weighted, recency-boosted."""
        weights = [
            float(
                self.schedule.energy(e.new_loc, e.cost_cycles)
                * (1 + index)
            )
            for index, e in enumerate(self.queue)
        ]
        return rng.choices(self.queue, weights=weights, k=1)[0]

    def _pick_stage(self, rng: random.Random) -> str:
        names, weights = self.STAGES, self._STAGE_WEIGHTS
        if len(self.queue) < 2:  # splice needs a partner
            names, weights = names[:-1], weights[:-1]
        return rng.choices(names, weights=weights, k=1)[0]

    def next_mutant(self, rng: random.Random) -> VMSeed:
        if self._energy <= 0:
            self._current = self._select(rng)
            self._energy = self.schedule.energy(
                self._current.new_loc, self._current.cost_cycles
            )
        self._energy -= 1
        stage = self._pick_stage(rng)
        self.stage_counts[stage] += 1
        return self._apply_stage(stage, self._current.seed, rng)

    def feedback(
        self,
        mutant: VMSeed,
        *,
        new_loc: int,
        cost_cycles: int,
        crashed: bool = False,
    ) -> None:
        self.executions += 1
        if new_loc > 0:
            # Cross-pollination: the find's constants join the
            # dictionary, and the find itself joins the queue (so
            # splice can recombine it).
            self.dictionary.feed(mutant)
            if len(self.queue) < self.MAX_QUEUE:
                depth = self._current.depth + 1
                self.queue.append(PowerQueueEntry(
                    seed=mutant, new_loc=new_loc,
                    cost_cycles=max(cost_cycles, 0), depth=depth,
                ))
                self._max_depth = max(self._max_depth, depth)

    # -- stages --------------------------------------------------------

    def _apply_stage(
        self, stage: str, seed: VMSeed, rng: random.Random
    ) -> VMSeed:
        if stage == "dictionary":
            return self._dictionary_stage(seed, rng)
        if stage == "structural":
            return self._structural_stage(seed, rng)
        if stage == "splice":
            return self._splice_stage(seed, rng)
        return self._havoc_stage(seed, rng)

    def _havoc_stage(
        self, seed: VMSeed, rng: random.Random
    ) -> VMSeed:
        """A stack of 1..N PoC primitives — always applicable, so the
        other stages fall back here when they have nothing to bite."""
        mutant = seed
        for _ in range(rng.randint(1, self.max_havoc_stack)):
            op = rng.choice(self._HAVOC_OPS)
            mutant = op(mutant, self.area, rng)
        return mutant

    def _dictionary_stage(
        self, seed: VMSeed, rng: random.Random
    ) -> VMSeed:
        indices = [
            index for index in area_indices(seed, self.area)
            if len(self.dictionary.values_for(
                int(seed.entries[index].flag),
                seed.entries[index].encoding,
            )) > 1
        ]
        if not indices:
            return self._havoc_stage(seed, rng)
        index = rng.choice(indices)
        entry = seed.entries[index]
        values = self.dictionary.values_for(
            int(entry.flag), entry.encoding
        )
        value = rng.choice(values)
        mask = (1 << value_width(entry)) - 1
        nudge = rng.choice((0, 0, 1, -1))
        return seed.replace_entry(index, SeedEntry(
            flag=entry.flag, encoding=entry.encoding,
            value=(value + nudge) & mask,
        ))

    def _structural_stage(
        self, seed: VMSeed, rng: random.Random
    ) -> VMSeed:
        candidates = self._structural_candidates(seed)
        if not candidates:
            return self._havoc_stage(seed, rng)
        index, crafter = rng.choice(candidates)
        entry = seed.entries[index]
        mask = (1 << value_width(entry)) - 1
        return seed.replace_entry(index, SeedEntry(
            flag=entry.flag, encoding=entry.encoding,
            value=crafter(rng) & mask,
        ))

    def _structural_candidates(
        self, seed: VMSeed
    ) -> list[tuple[int, Callable[[random.Random], int]]]:
        """The (index, crafter) pairs structural mutation can hit,
        in entry order (deterministic pick domain)."""
        candidates: list[
            tuple[int, Callable[[random.Random], int]]
        ] = []
        for index in area_indices(seed, self.area):
            entry = seed.entries[index]
            if entry.flag is SeedFlag.GPR:
                candidates.append((index, self._craft_gpr))
                continue
            fld = entry.vmcs_field
            if fld in _CR0_FIELDS:
                candidates.append((index, craft_cr0))
            elif fld in _CR4_FIELDS:
                candidates.append((index, craft_cr4))
            elif fld in _SEG_AR:
                candidates.append((index, pack_segment_ar))
            elif fld in _SEG_SELECTOR:
                candidates.append((index, pack_segment_selector))
            elif fld in _SEG_LIMIT:
                candidates.append((index, craft_segment_limit))
            elif fld in _SEG_BASE:
                candidates.append((index, craft_segment_base))
            elif fld is ArchField.EXIT_QUALIFICATION:
                candidates.append((index, self._craft_qualification))
        return candidates

    def _craft_gpr(self, rng: random.Random) -> int:
        if self.reason is ExitReason.CPUID and rng.randrange(2):
            return rng.choice(CPUID_LEAVES)
        return rng.choice(INTERESTING_GPR)

    def _craft_qualification(self, rng: random.Random) -> int:
        return qualification_value(self.reason, self.arch, rng)

    def _splice_stage(
        self, seed: VMSeed, rng: random.Random
    ) -> VMSeed:
        if len(self.queue) < 2:
            return self._havoc_stage(seed, rng)
        donor = rng.choice(self.queue).seed
        mutant = seed
        swapped = False
        for index in area_indices(seed, self.area):
            if index >= len(donor.entries):
                continue
            ours = mutant.entries[index]
            theirs = donor.entries[index]
            if (
                theirs.flag is ours.flag
                and theirs.encoding == ours.encoding
                and theirs.value != ours.value
                and rng.randrange(2)
            ):
                mutant = mutant.replace_entry(index, SeedEntry(
                    flag=ours.flag, encoding=ours.encoding,
                    value=theirs.value,
                ))
                swapped = True
        if not swapped:
            # Nothing to cross over (identical partner): havoc instead.
            return self._havoc_stage(mutant, rng)
        return mutant


def build_engine(
    case: "FuzzTestCase",
    arch: str = "vmx",
    max_havoc_stack: int = 3,
) -> MutationEngine:
    """The engine a test case asked for (``case.engine``)."""
    name = getattr(case, "engine", "poc")
    if name == "poc":
        return PocEngine(case)
    if name == "smart":
        return SmartEngine(
            case, arch=arch, max_havoc_stack=max_havoc_stack
        )
    raise ValueError(
        f"unknown mutation engine {name!r} "
        f"(expected one of {', '.join(ENGINE_NAMES)})"
    )
