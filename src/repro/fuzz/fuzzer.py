"""The IRIS-based fuzzer prototype (paper §VII, Fig. 11).

For each test case: replay the recorded VM behavior up to the target
seed (reaching the linked valid VM state), snapshot that state, then
submit N mutated versions of the target seed, restoring the state after
every crash.  Reports newly discovered coverage relative to the
baseline (the unmutated target seed's coverage) and the crash tallies
Table I summarizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.manager import IrisManager
from repro.core.replay import ReplayOutcome
from repro.core.snapshot import VmSnapshot, restore_snapshot, take_snapshot
from repro.hypervisor.coverage import NOISE_FILES
from repro.fuzz.corpus import Corpus
from repro.fuzz.differential import (
    MAX_DIVERGENCES_KEPT,
    DifferentialOracle,
    DivergenceRecord,
    merge_divergences,
)
from repro.fuzz.failures import (
    FailureKind,
    FailureRecord,
    classify_result,
    failure_identity,
)
from repro.fuzz.mutation_engine import build_engine
from repro.fuzz.mutations import MutationArea
from repro.fuzz.testcase import FuzzTestCase
from repro.obs import OBS
from repro.vmx.exit_reasons import ExitReason


@dataclass
class FuzzResult:
    """Outcome of one test case (one Table I cell)."""

    workload: str
    exit_reason: ExitReason
    area: MutationArea
    mutations_run: int = 0
    baseline_loc: int = 0
    new_loc: int = 0
    vm_crashes: int = 0
    hypervisor_crashes: int = 0
    failures: list[FailureRecord] = field(default_factory=list)
    corpus: Corpus = field(default_factory=Corpus)
    #: The discovered lines themselves (not just the count), so shard
    #: results can be merged without double-counting overlap.
    new_lines: frozenset[tuple[str, int]] = frozenset()
    #: Differential-mode observations (empty unless the fuzzer ran
    #: with a :class:`repro.fuzz.differential.DifferentialOracle`).
    divergences: tuple[DivergenceRecord, ...] = ()
    seeds_compared: int = 0
    untranslatable_seeds: int = 0

    @property
    def cell_key(self) -> tuple:
        """The Table-I cell this result belongs to."""
        return (self.workload, self.exit_reason, self.area)

    @property
    def coverage_increase_pct(self) -> float:
        """Table I's cell value: % coverage discovered over baseline."""
        if self.baseline_loc == 0:
            return 0.0
        return 100.0 * self.new_loc / self.baseline_loc

    @property
    def vm_crash_rate(self) -> float:
        return self.vm_crashes / max(self.mutations_run, 1)

    @property
    def hypervisor_crash_rate(self) -> float:
        return self.hypervisor_crashes / max(self.mutations_run, 1)

    def describe(self) -> str:
        return (
            f"{self.workload}/{self.exit_reason.name}/{self.area.value}"
            f": +{self.coverage_increase_pct:.0f}% coverage, "
            f"{self.vm_crashes} VM / {self.hypervisor_crashes} HV "
            f"crashes over {self.mutations_run} mutations"
        )

    def merge(self, other: "FuzzResult") -> "FuzzResult":
        """Order-insensitive merge of two shards of the same cell.

        Counts are summed, discovered coverage is unioned through
        ``new_lines`` (so overlap between shards is not double
        counted), corpora merge canonically, and the combined failure
        records are re-capped at :data:`MAX_FAILURES_KEPT` keeping the
        lowest :func:`failure_identity` keys — taking the K smallest is
        associative, so chained merges land on the same retained set as
        one flat merge, and merged shards can never silently exceed the
        per-cell cap.  Divergence records combine through the same
        algebra (:func:`repro.fuzz.differential.merge_divergences`),
        keeping differential reports jobs- and wave-invariant.
        """
        if self.cell_key != other.cell_key:
            raise ValueError(
                f"cannot merge results of different cells: "
                f"{self.cell_key} vs {other.cell_key}"
            )
        if self.baseline_loc != other.baseline_loc:
            raise ValueError(
                "shards disagree on the cell's baseline coverage "
                f"({self.baseline_loc} vs {other.baseline_loc} LOC): "
                "they did not replay from the same snapshot"
            )
        lines = self.new_lines | other.new_lines
        failures = sorted(
            self.failures + other.failures, key=failure_identity
        )[:MAX_FAILURES_KEPT]
        return FuzzResult(
            workload=self.workload,
            exit_reason=self.exit_reason,
            area=self.area,
            mutations_run=self.mutations_run + other.mutations_run,
            baseline_loc=self.baseline_loc,
            new_loc=len(lines),
            vm_crashes=self.vm_crashes + other.vm_crashes,
            hypervisor_crashes=(
                self.hypervisor_crashes + other.hypervisor_crashes
            ),
            failures=failures,
            corpus=self.corpus.merge(other.corpus),
            new_lines=lines,
            divergences=merge_divergences(
                self.divergences, other.divergences
            ),
            seeds_compared=(
                self.seeds_compared + other.seeds_compared
            ),
            untranslatable_seeds=(
                self.untranslatable_seeds + other.untranslatable_seeds
            ),
        )


#: Cap on retained failure records per test case (triage artifacts).
MAX_FAILURES_KEPT = 64


@dataclass
class _TargetState:
    """Cached Fig.-11 target state (fast-reset reuse across cases).

    When consecutive test cases share the same replayed prefix —
    identical trace, seed index and starting snapshot — re-reaching
    ``VMseed_R`` is a snapshot revert, not a re-replay: restore
    ``state_r``, advance the clock by the cycles the original replay
    charged (so timing metrics still account the reach cost), and go
    straight to mutating.  Crash and mutation outcomes are unaffected;
    coverage accounting for the repeated case reuses the cached
    baseline instead of re-measuring it at the current TSC phase.
    """

    trace: object
    seed_index: int
    from_snapshot: VmSnapshot | None
    state_r: VmSnapshot
    baseline_lines: set[tuple[str, int]]
    reach_cycles: int

    def matches(
        self,
        case: FuzzTestCase,
        from_snapshot: VmSnapshot | None,
    ) -> bool:
        return (
            self.trace is case.trace
            and self.seed_index == case.seed_index
            and self.from_snapshot is from_snapshot
        )


class IrisFuzzer:
    """Drives fuzzing campaigns through an :class:`IrisManager`."""

    def __init__(
        self,
        manager: IrisManager,
        rng: random.Random | None = None,
        fast_reset: bool = True,
        oracle: DifferentialOracle | None = None,
    ) -> None:
        """``fast_reset`` enables the delta-restore path in the
        crash-revert loop (every mutation there goes through tracked
        state paths, the precondition ``restore_snapshot(fast=True)``
        documents); ``False`` rebuilds the full state on every revert,
        the pre-fast-reset behavior the differential tests compare
        against.  ``oracle`` arms differential mode: every mutant is
        also replayed on a secondary SVM backend and the observable
        behavior diffed into the result's ``divergences``."""
        self.manager = manager
        self.rng = rng or random.Random(0xF022)
        self.fast_reset = fast_reset
        self.oracle = oracle
        self._target_state: _TargetState | None = None

    # ---- single test case ---------------------------------------------

    def _reach_target_state(
        self,
        case: FuzzTestCase,
        from_snapshot: VmSnapshot | None,
    ) -> None:
        """Replay W until VMseed_R is reached (Fig. 11's first phase)."""
        self.manager.create_dummy_vm(from_snapshot=from_snapshot)
        assert self.manager.replayer is not None
        prefix = case.trace.records[:case.seed_index]
        for record in prefix:
            result = self.manager.replayer.submit(record.seed)
            if result.outcome is not ReplayOutcome.OK:
                raise RuntimeError(
                    "prefix replay crashed before reaching the target "
                    f"state: {result.crash_reason}"
                )

    def run_test_case(
        self,
        case: FuzzTestCase,
        from_snapshot: VmSnapshot | None = None,
    ) -> FuzzResult:
        """Execute one test case end-to-end."""
        with OBS.tracer.span(
            "iris.fuzz.case", reason=case.exit_reason.name,
            area=case.area.value, mutations=case.n_mutations,
        ):
            result = self._run_test_case(case, from_snapshot)
        if OBS.metrics.enabled:
            OBS.metrics.inc(
                "fuzz_cases", reason=case.exit_reason.name,
                area=case.area.value,
            )
            OBS.metrics.inc(
                "fuzz_mutations", value=result.mutations_run,
                reason=case.exit_reason.name, area=case.area.value,
            )
            OBS.metrics.inc(
                "fuzz_new_lines", value=result.new_loc,
                reason=case.exit_reason.name, area=case.area.value,
            )
            if self.oracle is not None:
                OBS.metrics.inc(
                    "differential_seeds_compared",
                    value=result.seeds_compared,
                    reason=case.exit_reason.name, area=case.area.value,
                )
                OBS.metrics.inc(
                    "differential_untranslatable_seeds",
                    value=result.untranslatable_seeds,
                    reason=case.exit_reason.name, area=case.area.value,
                )
                OBS.metrics.inc(
                    "differential_divergences",
                    value=len(result.divergences),
                    reason=case.exit_reason.name, area=case.area.value,
                )
        return result

    def _run_test_case(
        self,
        case: FuzzTestCase,
        from_snapshot: VmSnapshot | None = None,
    ) -> FuzzResult:
        manager = self.manager
        hv = manager.hv
        cached = self._target_state if self.fast_reset else None
        if (
            cached is not None
            and cached.matches(case, from_snapshot)
            and manager.replayer is not None
            and manager.dummy_vm is not None
            and manager.dummy_vm.restore_stamp is cached.state_r
        ):
            # Fast-reset reuse: the dummy VM is stamped with this very
            # target state, so re-reaching it is one delta restore.
            replayer = manager.replayer
            dummy = manager.dummy_vm
            restore_snapshot(hv, dummy, cached.state_r, fast=True)
            # Charge the skipped prefix+baseline replay's cycles in one
            # step, so timing metrics keep accounting the Fig.-11 reach
            # cost.  (The rebuild path's re-replay would charge *about*
            # this much — catch-up timer work varies with TSC phase —
            # which is why repeated-case coverage accounting is only
            # guaranteed identical where replay actually re-runs, e.g.
            # campaign shards.)
            hv.clock.advance(cached.reach_cycles)
            baseline_lines = cached.baseline_lines
            state_r = cached.state_r
        else:
            cycles_before = hv.clock.now
            self._reach_target_state(case, from_snapshot)
            assert manager.replayer is not None and manager.dummy_vm
            replayer = manager.replayer
            dummy = manager.dummy_vm

            # Baseline: the unmutated target seed's coverage.  The
            # asynchronous components' lines are filtered out of the
            # whole campaign's accounting — their firing depends on TSC
            # phase, not on the mutations (the same noise the paper's
            # §VI-B filters and MundoFuzz removes by differential
            # learning).
            baseline = replayer.submit(case.target_seed)
            if baseline.outcome is not ReplayOutcome.OK:
                raise RuntimeError(
                    f"baseline seed crashed: {baseline.crash_reason}"
                )
            baseline_lines = self._denoise(baseline.coverage_lines)
            state_r = take_snapshot(hv, dummy)
            self._target_state = _TargetState(
                trace=case.trace,
                seed_index=case.seed_index,
                from_snapshot=from_snapshot,
                state_r=state_r,
                baseline_lines=baseline_lines,
                reach_cycles=hv.clock.now - cycles_before,
            ) if self.fast_reset else None

        divergences: list[DivergenceRecord] = []
        if self.oracle is not None:
            # Arm the secondary (SVM) backend at the same target state
            # — after both the cached and rebuild paths, so fast-reset
            # reuse on the primary never skips the oracle's own setup.
            baseline_divergence = self.oracle.begin_case(
                case, from_snapshot, frozenset(baseline_lines)
            )
            if baseline_divergence is not None:
                divergences.append(baseline_divergence)

        # The engine owns mutant generation.  ``poc`` reproduces the
        # pre-engine loop's exact RNG stream; ``smart`` runs the
        # staged pipeline (dictionary/structural/havoc/splice) with
        # its cost-aware power schedule fed from the clock deltas
        # measured below.
        engine = build_engine(case, arch=manager.arch)
        result = FuzzResult(
            workload=case.trace.workload,
            exit_reason=case.exit_reason,
            area=case.area,
            baseline_loc=len(baseline_lines),
        )
        discovered: set[tuple[str, int]] = set()

        for index in range(case.n_mutations):
            cycles_before = hv.clock.now
            mutated = engine.next_mutant(self.rng)
            outcome = replayer.submit(mutated)
            result.mutations_run += 1

            if self.oracle is not None:
                # Generated in increasing mutation order (at most one
                # record per mutant), so the list is already sorted by
                # divergence identity: truncating here retains exactly
                # the records merge_divergences would keep.
                record = self.oracle.observe(index, mutated, outcome)
                if (
                    record is not None
                    and len(divergences) < MAX_DIVERGENCES_KEPT
                ):
                    divergences.append(record)

            lines = self._denoise(outcome.coverage_lines)
            fresh = lines - baseline_lines - discovered
            discovered |= fresh

            failure = classify_result(outcome, mutated, index, hv.log)
            if failure is not None:
                if failure.kind is FailureKind.VM_CRASH:
                    result.vm_crashes += 1
                else:
                    result.hypervisor_crashes += 1
                if len(result.failures) < MAX_FAILURES_KEPT:
                    result.failures.append(failure)
                result.corpus.consider(
                    mutated, lines, len(fresh), failure.kind
                )
                # Reset to the target VM state (the host "reboots" /
                # the dummy VM is reverted, paper Fig. 11).
                restore_snapshot(
                    hv, dummy, state_r, fast=self.fast_reset
                )
            elif fresh:
                result.corpus.consider(mutated, lines, len(fresh))
            engine.feedback(
                mutated, new_loc=len(fresh),
                cost_cycles=hv.clock.now - cycles_before,
                crashed=failure is not None,
            )

        result.new_loc = len(discovered)
        result.new_lines = frozenset(discovered)
        if OBS.metrics.enabled and engine.name == "smart":
            # Per-stage accounting for the staged pipeline only: the
            # poc path emits exactly the counters it always did, so
            # existing metrics goldens stay byte-identical.
            stage_counts: dict[str, int] = getattr(
                engine, "stage_counts", {}
            )
            for stage in sorted(stage_counts):
                if stage_counts[stage]:
                    OBS.metrics.inc(
                        "fuzz_stage_mutants",
                        value=stage_counts[stage], stage=stage,
                        reason=case.exit_reason.name,
                        area=case.area.value,
                    )
        if self.oracle is not None:
            result.divergences = tuple(divergences)
            result.seeds_compared = self.oracle.seeds_compared
            result.untranslatable_seeds = (
                self.oracle.untranslatable_seeds
            )
        return result

    @staticmethod
    def _denoise(
        lines: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        """Drop asynchronous-component lines from a coverage set.

        Returns a frozenset so the per-mutation loop can hand the
        result straight to :meth:`Corpus.consider` without another
        copy.
        """
        return frozenset(
            t for t in lines if t[0] not in NOISE_FILES
        )

    # ---- campaigns -------------------------------------------------------

    def run_campaign(
        self,
        cases: list[FuzzTestCase],
        from_snapshot: VmSnapshot | None = None,
    ) -> list[FuzzResult]:
        """Run a list of test cases (a Table I row/column sweep)."""
        return [
            self.run_test_case(case, from_snapshot=from_snapshot)
            for case in cases
        ]
