"""Cross-arch differential fuzzing oracle (``iris-fuzz --differential``).

The PoC fuzzer has exactly one oracle — crashes.  This module adds a
second, richer one: *semantic disagreement between the two hypervisor
models*.  Every mutated seed is replayed twice — natively on the VT-x
backend, and on the SVM backend through the bidirectional seed
translation (:mod:`repro.svm.translate`) — and the observable behavior
is diffed:

* **outcome disagreement** — one backend crashes where the other
  survives (or they crash differently);
* **echo-write divergence** — the sets of fields the replayed handlers
  wrote back disagree, restricted to :data:`ROUND_TRIP_FIELDS` so
  translation loss (reported by the forward direction) is never
  misread as a hypervisor bug;
* **coverage divergence** — the *noise-filtered, baseline-relative*
  coverage deltas disagree.  Comparing deltas (mutant lines minus each
  backend's own baseline lines) cancels the constant per-arch
  dispatch differences, the same way the paper's §VI-B filter cancels
  asynchronous-event noise.

Each disagreement becomes a :class:`DivergenceRecord` with a stable
:func:`divergence_signature` (the :func:`repro.fuzz.triage.crash_signature`
normalization style), and collections of records merge through
:func:`merge_divergences` — an order-insensitive, idempotent,
associative union capped like :data:`FuzzResult.MAX_FAILURES_KEPT` —
so the merged divergence report is byte-identical for any jobs count,
wave partition, or transport (the determinism contract the
differential test matrix pins).

NecoFuzz (PAPERS.md) uses exactly this "two execution paths disagree"
signal to find nested-virtualization bugs that never crash.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.arch.fields import ArchField
from repro.core.manager import IrisManager
from repro.core.replay import ReplayOutcome, SeedReplayResult
from repro.core.seed import VMSeed
from repro.core.snapshot import VmSnapshot, restore_snapshot, take_snapshot
from repro.fuzz.testcase import FuzzTestCase
from repro.fuzz.triage import _NORMALIZERS
from repro.hypervisor.coverage import NOISE_FILES
from repro.svm.translate import (
    ROUND_TRIP_FIELDS,
    translate_seed,
    translate_seed_back,
)
from repro.vmx.exit_reasons import reason_name

#: Cap on retained divergence records per cell, mirroring
#: ``MAX_FAILURES_KEPT``: merged shards keep the lowest
#: :func:`divergence_identity` keys, and taking the K smallest is
#: associative, so chained merges land on the same retained set.
MAX_DIVERGENCES_KEPT = 64


class DivergenceKind(enum.Enum):
    """Taxonomy of observable cross-backend disagreements."""

    #: The two backends disagree on whether (or how) the mutant
    #: crashes — the strongest signal, reported alone when present.
    OUTCOME = "outcome-disagreement"
    #: The replayed handlers echo-wrote different round-trip fields.
    ECHO_WRITE = "echo-write-divergence"
    #: The noise-filtered, baseline-relative coverage deltas differ.
    COVERAGE = "coverage-divergence"
    #: The *unmutated* baseline (or its replay prefix) already refuses
    #: to replay on the secondary backend; per-mutant diffing for the
    #: cell is disabled and this one record explains why.
    BASELINE = "baseline-disagreement"


@dataclass(frozen=True)
class DivergenceRecord:
    """One observed cross-backend disagreement (one mutant)."""

    kind: DivergenceKind
    #: Index of the mutant within its shard's mutation loop
    #: (``-1`` for baseline disagreements).
    mutation_index: int
    #: The VT-x-addressed seed whose replay diverged.
    seed: VMSeed
    #: :class:`ReplayOutcome` values on each backend.
    vmx_outcome: str
    svm_outcome: str
    #: Deterministic human-readable description of the disagreement.
    detail: str

    def describe(self) -> str:
        return (
            f"[{self.kind.value}] mutation #{self.mutation_index} "
            f"({reason_name(self.seed.exit_reason)}): "
            f"vmx={self.vmx_outcome} svm={self.svm_outcome} — "
            f"{self.detail}"
        )


def divergence_signature(record: DivergenceRecord) -> str:
    """A stable identity for 'the same disagreement'.

    The volatile parts of the detail (addresses, large numbers) are
    normalized away with the same patterns
    :func:`repro.fuzz.triage.crash_signature` uses, so equivalent
    divergences found through different mutants share a signature.
    """
    detail = record.detail
    for pattern, replacement in _NORMALIZERS:
        detail = pattern.sub(replacement, detail)
    return (
        f"{record.kind.value}|{reason_name(record.seed.exit_reason)}"
        f"|{record.vmx_outcome}->{record.svm_outcome}|{detail}"
    )


def divergence_identity(record: DivergenceRecord) -> tuple:
    """Total order over divergence records, independent of shard order.

    Mutation index first, mirroring
    :func:`repro.fuzz.failures.failure_identity`: when merged shards
    overflow the retention cap, the earliest-discovered divergences
    win.  Every field participates, so the order is total and the
    dedup in :func:`merge_divergences` never conflates two distinct
    observations.
    """
    return (
        record.mutation_index,
        record.kind.value,
        record.vmx_outcome,
        record.svm_outcome,
        record.detail,
        record.seed.exit_reason,
        record.seed.pack(),
    )


def merge_divergences(
    *collections: Iterable[DivergenceRecord],
) -> tuple[DivergenceRecord, ...]:
    """Order-insensitive merge of divergence collections.

    A union keyed by :func:`divergence_identity` (so the merge is
    idempotent and commutative), re-sorted and capped at
    :data:`MAX_DIVERGENCES_KEPT` keeping the smallest identity keys
    (so chained merges are associative — capping an intermediate union
    at the K smallest never discards an element of the final K
    smallest).  This is the algebra :meth:`FuzzResult.merge` relies on
    for jobs-, wave-, and transport-invariant divergence reports.
    """
    by_key: dict[tuple, DivergenceRecord] = {}
    for collection in collections:
        for record in collection:
            by_key.setdefault(divergence_identity(record), record)
    return tuple(
        by_key[key] for key in sorted(by_key)
    )[:MAX_DIVERGENCES_KEPT]


# ---- triage / report rendering ---------------------------------------

@dataclass
class DivergenceBucket:
    """All observed instances of one distinct disagreement."""

    signature: str
    kind: DivergenceKind
    example: DivergenceRecord
    count: int = 0
    #: Exit reasons of the seeds that triggered it.
    seed_reasons: set[str] = field(default_factory=set)

    def add(self, record: DivergenceRecord) -> None:
        self.count += 1
        self.seed_reasons.add(reason_name(record.seed.exit_reason))


@dataclass
class DivergenceReport:
    """Deduplicated cross-backend disagreement summary."""

    buckets: list[DivergenceBucket] = field(default_factory=list)
    total_divergences: int = 0
    seeds_compared: int = 0
    untranslatable_seeds: int = 0

    @property
    def unique_divergences(self) -> int:
        return len(self.buckets)

    def rows(self) -> list[tuple]:
        """Table rows in a deterministic order (for render_table)."""
        return [
            (
                bucket.kind.value,
                bucket.count,
                ",".join(sorted(bucket.seed_reasons)),
                f"{bucket.example.vmx_outcome}/"
                f"{bucket.example.svm_outcome}",
                bucket.example.detail[:60],
            )
            for bucket in sorted(
                self.buckets, key=lambda b: (-b.count, b.signature)
            )
        ]


def triage_divergences(
    records: Iterable[DivergenceRecord],
    *,
    seeds_compared: int = 0,
    untranslatable_seeds: int = 0,
) -> DivergenceReport:
    """Bucket divergence records by signature."""
    by_signature: dict[str, DivergenceBucket] = {}
    total = 0
    for record in sorted(records, key=divergence_identity):
        total += 1
        signature = divergence_signature(record)
        bucket = by_signature.get(signature)
        if bucket is None:
            bucket = DivergenceBucket(
                signature=signature, kind=record.kind, example=record,
            )
            by_signature[signature] = bucket
        bucket.add(record)
    return DivergenceReport(
        buckets=list(by_signature.values()),
        total_divergences=total,
        seeds_compared=seeds_compared,
        untranslatable_seeds=untranslatable_seeds,
    )


def render_divergence_report(
    records: Iterable[DivergenceRecord],
    *,
    seeds_compared: int = 0,
    untranslatable_seeds: int = 0,
) -> str:
    """The rendered divergence report (a pure function of its inputs).

    Byte-identical for any ordering of ``records`` — rows are sorted
    by (count, signature) and every column is deterministic — which is
    what lets the test matrix compare reports across jobs counts,
    fast-reset modes, and transports by simple string equality.
    """
    from repro.analysis import render_table

    report = triage_divergences(
        records,
        seeds_compared=seeds_compared,
        untranslatable_seeds=untranslatable_seeds,
    )
    table = render_table(
        ["kind", "count", "seed reasons", "vmx/svm", "example"],
        report.rows(),
        title=(
            f"Differential oracle: {report.unique_divergences} "
            f"distinct divergence(s) from "
            f"{report.total_divergences} retained, "
            f"{report.seeds_compared} seeds compared "
            f"({report.untranslatable_seeds} untranslatable)"
        ),
    )
    return table


# ---- the oracle -------------------------------------------------------

def normalize_seed(seed: VMSeed) -> VMSeed | None:
    """Round a VT-x seed through the SVM translation (and back).

    The result is what the secondary backend actually replays: VT-x
    addressed, but with translation-dropped fields removed and the
    exit-reason read re-synthesized from the exit code.  ``None`` when
    the seed's exit has no SVM counterpart.
    """
    svm_seed = translate_seed(seed)
    if svm_seed is None:
        return None
    return translate_seed_back(svm_seed)


def _denoise(
    lines: frozenset[tuple[str, int]]
) -> frozenset[tuple[str, int]]:
    return frozenset(t for t in lines if t[0] not in NOISE_FILES)


def _echo_set(
    result: SeedReplayResult,
) -> frozenset[tuple[ArchField, int]]:
    """The replay's echo-writes, restricted to round-trip fields.

    Fields outside :data:`ROUND_TRIP_FIELDS` are dropped by the
    forward translation (and reported there), so their absence on the
    SVM side is a translation artifact, not a divergence.
    """
    return frozenset(
        (fld, value) for fld, value in result.vmwrites
        if fld in ROUND_TRIP_FIELDS
    )


def _format_fields(
    entries: Iterable[tuple[ArchField, int]], limit: int = 3
) -> str:
    ordered = sorted(entries, key=lambda e: (e[0].name, e[1]))
    shown = ", ".join(
        f"{fld.name}=0x{value:x}" for fld, value in ordered[:limit]
    )
    if len(ordered) > limit:
        shown += f", +{len(ordered) - limit} more"
    return shown or "none"


def _format_lines(
    lines: Iterable[tuple[str, int]], limit: int = 3
) -> str:
    ordered = sorted(lines)
    shown = ", ".join(
        f"{file}:{line}" for file, line in ordered[:limit]
    )
    if len(ordered) > limit:
        shown += f", +{len(ordered) - limit} more"
    return shown or "none"


class DifferentialOracle:
    """Mirrors one fuzzed cell on a secondary SVM backend and diffs.

    The primary fuzz loop (:class:`repro.fuzz.fuzzer.IrisFuzzer`)
    calls :meth:`begin_case` once per test case — the oracle builds a
    **fresh** SVM hypervisor, restores the same neutral snapshot,
    replays the translated prefix and baseline, and snapshots its own
    target state — then :meth:`observe` once per mutant.

    Determinism: every replay here is a pure function of
    ``(case, from_snapshot, mutant)``.  The oracle deliberately
    ignores the primary's ``fast_reset`` flag — its own resets always
    take the full-restore path — so flipping the primary's flag
    cannot change a single divergence byte (the fast-reset arm of the
    test matrix holds by construction).
    """

    def __init__(self) -> None:
        self.seeds_compared = 0
        self.untranslatable_seeds = 0
        self._manager: IrisManager | None = None
        self._state_r: VmSnapshot | None = None
        self._baseline_lines: frozenset[tuple[str, int]] = frozenset()
        self._vmx_baseline_lines: frozenset[tuple[str, int]] = frozenset()
        self._enabled = False
        self._baseline_untranslatable = False

    # -- per-case setup ------------------------------------------------

    def begin_case(
        self,
        case: FuzzTestCase,
        from_snapshot: VmSnapshot | None,
        vmx_baseline_lines: frozenset[tuple[str, int]],
    ) -> DivergenceRecord | None:
        """Reach the cell's target state on the secondary backend.

        Returns a :class:`DivergenceKind.BASELINE` record (and
        disables per-mutant diffing) when the translated prefix or
        baseline refuses to replay on SVM; ``None`` when the oracle is
        armed.
        """
        self.seeds_compared = 0
        self.untranslatable_seeds = 0
        self._enabled = False
        self._baseline_untranslatable = False
        self._vmx_baseline_lines = frozenset(vmx_baseline_lines)

        manager = IrisManager(arch="svm", fast_reset=False)
        if (
            from_snapshot is not None
            and from_snapshot.clock_tsc > manager.hv.clock.now
        ):
            # Same clock-domain fast-forward run_shard performs for the
            # primary: timer deadlines in the snapshot are absolute.
            manager.hv.clock.advance(
                from_snapshot.clock_tsc - manager.hv.clock.now
            )
        self._manager = manager
        replayer = manager.create_dummy_vm(from_snapshot=from_snapshot)

        for position, record in enumerate(
            case.trace.records[:case.seed_index]
        ):
            normalized = normalize_seed(record.seed)
            if normalized is None:
                # No SVM counterpart for this prefix exit: skip it, as
                # the translated-trace replay does.  Deterministic — a
                # pure function of the recorded trace.
                continue
            result = replayer.submit(normalized)
            if result.outcome is not ReplayOutcome.OK:
                return self._baseline_divergence(
                    case,
                    f"translated prefix seed #{position} crashed on "
                    f"svm: {result.crash_reason}",
                    svm_outcome=result.outcome.value,
                )

        baseline_seed = normalize_seed(case.target_seed)
        if baseline_seed is None:
            # The target exit itself has no SVM counterpart: every
            # mutant of it is untranslatable.  Not a divergence — the
            # forward translation reports the gap — just uncomparable.
            self._baseline_untranslatable = True
            return None
        baseline = replayer.submit(baseline_seed)
        if baseline.outcome is not ReplayOutcome.OK:
            return self._baseline_divergence(
                case,
                "translated baseline seed crashed on svm: "
                f"{baseline.crash_reason}",
                svm_outcome=baseline.outcome.value,
            )
        self._baseline_lines = _denoise(baseline.coverage_lines)
        assert manager.dummy_vm is not None
        self._state_r = take_snapshot(manager.hv, manager.dummy_vm)
        self._enabled = True
        return None

    def _baseline_divergence(
        self, case: FuzzTestCase, detail: str, *, svm_outcome: str
    ) -> DivergenceRecord:
        return DivergenceRecord(
            kind=DivergenceKind.BASELINE,
            mutation_index=-1,
            seed=case.target_seed,
            vmx_outcome=ReplayOutcome.OK.value,
            svm_outcome=svm_outcome,
            detail=detail,
        )

    # -- per-mutant comparison -----------------------------------------

    def observe(
        self,
        mutation_index: int,
        mutated: VMSeed,
        vmx_result: SeedReplayResult,
    ) -> DivergenceRecord | None:
        """Replay one mutant on the secondary backend and diff."""
        if not self._enabled:
            if self._baseline_untranslatable:
                # The cell's target exit has no SVM counterpart, so
                # neither does any mutant of it: tally them so the
                # report says how much of the cell went uncompared.
                self.untranslatable_seeds += 1
            return None
        normalized = normalize_seed(mutated)
        if normalized is None:
            self.untranslatable_seeds += 1
            return None
        assert self._manager is not None
        manager = self._manager
        replayer = manager.replayer
        assert replayer is not None and manager.dummy_vm is not None
        svm_result = replayer.submit(normalized)
        self.seeds_compared += 1

        divergence = self._diff(mutation_index, mutated,
                                vmx_result, svm_result)
        if (
            vmx_result.outcome is not ReplayOutcome.OK
            or svm_result.outcome is not ReplayOutcome.OK
        ):
            # Stay in lockstep with the primary loop's crash-revert
            # policy: the primary restores its target state whenever
            # *it* crashed, so the secondary restores whenever either
            # side did — keeping residual state aligned on every
            # mutant both sides agreed was healthy.
            assert self._state_r is not None
            restore_snapshot(
                manager.hv, manager.dummy_vm, self._state_r,
                fast=False,
            )
        return divergence

    def _diff(
        self,
        mutation_index: int,
        mutated: VMSeed,
        vmx_result: SeedReplayResult,
        svm_result: SeedReplayResult,
    ) -> DivergenceRecord | None:
        outcomes = (vmx_result.outcome.value, svm_result.outcome.value)
        if vmx_result.outcome is not svm_result.outcome:
            return DivergenceRecord(
                kind=DivergenceKind.OUTCOME,
                mutation_index=mutation_index,
                seed=mutated,
                vmx_outcome=outcomes[0],
                svm_outcome=outcomes[1],
                detail=(
                    f"vmx {outcomes[0]} "
                    f"({vmx_result.crash_reason or 'healthy'}) vs "
                    f"svm {outcomes[1]} "
                    f"({svm_result.crash_reason or 'healthy'})"
                ),
            )
        vmx_echo = _echo_set(vmx_result)
        svm_echo = _echo_set(svm_result)
        if vmx_echo != svm_echo:
            return DivergenceRecord(
                kind=DivergenceKind.ECHO_WRITE,
                mutation_index=mutation_index,
                seed=mutated,
                vmx_outcome=outcomes[0],
                svm_outcome=outcomes[1],
                detail=(
                    "echo-writes disagree: only-vmx "
                    f"[{_format_fields(vmx_echo - svm_echo)}] "
                    "only-svm "
                    f"[{_format_fields(svm_echo - vmx_echo)}]"
                ),
            )
        vmx_delta = (
            _denoise(vmx_result.coverage_lines)
            - self._vmx_baseline_lines
        )
        svm_delta = (
            _denoise(svm_result.coverage_lines) - self._baseline_lines
        )
        if vmx_delta != svm_delta:
            return DivergenceRecord(
                kind=DivergenceKind.COVERAGE,
                mutation_index=mutation_index,
                seed=mutated,
                vmx_outcome=outcomes[0],
                svm_outcome=outcomes[1],
                detail=(
                    "coverage deltas disagree: only-vmx "
                    f"[{_format_lines(vmx_delta - svm_delta)}] "
                    "only-svm "
                    f"[{_format_lines(svm_delta - vmx_delta)}]"
                ),
            )
        return None


def iter_divergences(
    results: Iterable,
) -> Iterator[DivergenceRecord]:
    """Flatten the divergence records out of fuzz results."""
    for result in results:
        yield from result.divergences
