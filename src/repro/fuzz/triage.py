"""Crash triage: deduplicate and summarize failure records.

The PoC saves every crashing test case "for further investigation with
the aim of crash analysis" (paper §VII-3).  This module is that
investigation step: failures are bucketed by a stable *crash
signature* — kind, diagnosed cause, and the normalized panic/crash
site — so a 10000-mutation barrage collapses into a handful of
distinct findings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.fuzz.failures import FailureKind, FailureRecord

#: Patterns that normalize volatile parts of crash reasons (addresses,
#: lengths, field values) so equivalent crashes share a signature.
_NORMALIZERS: tuple[tuple[re.Pattern, str], ...] = (
    (re.compile(r"0x[0-9a-fA-F]+"), "<addr>"),
    (re.compile(r"\b\d{2,}\b"), "<n>"),
    (re.compile(r"mode \d"), "mode <m>"),
)


def crash_signature(record: FailureRecord) -> str:
    """A stable identity for 'the same bug'."""
    reason = record.crash_reason
    for pattern, replacement in _NORMALIZERS:
        reason = pattern.sub(replacement, reason)
    return f"{record.kind.value}|{record.cause}|{reason}"


@dataclass
class CrashBucket:
    """All observed instances of one distinct crash."""

    signature: str
    kind: FailureKind
    cause: str
    example: FailureRecord
    count: int = 0
    #: Exit reasons of the seeds that triggered it.
    seed_reasons: set[str] = field(default_factory=set)

    def add(self, record: FailureRecord) -> None:
        self.count += 1
        self.seed_reasons.add(record.seed.reason.name)


@dataclass
class TriageReport:
    """Deduplicated crash summary."""

    buckets: list[CrashBucket] = field(default_factory=list)
    total_failures: int = 0

    @property
    def unique_crashes(self) -> int:
        return len(self.buckets)

    def hypervisor_buckets(self) -> list[CrashBucket]:
        return [
            b for b in self.buckets
            if b.kind is FailureKind.HYPERVISOR_CRASH
        ]

    def vm_buckets(self) -> list[CrashBucket]:
        return [
            b for b in self.buckets if b.kind is FailureKind.VM_CRASH
        ]

    def rows(self) -> list[tuple]:
        """Table rows, most frequent first (for render_table)."""
        return [
            (
                bucket.kind.value,
                bucket.cause,
                bucket.count,
                ",".join(sorted(bucket.seed_reasons)),
                bucket.example.crash_reason[:60],
            )
            for bucket in sorted(
                self.buckets, key=lambda b: -b.count
            )
        ]


def triage(records: list[FailureRecord]) -> TriageReport:
    """Bucket failure records by crash signature."""
    by_signature: dict[str, CrashBucket] = {}
    order: list[str] = []
    for record in records:
        signature = crash_signature(record)
        bucket = by_signature.get(signature)
        if bucket is None:
            bucket = CrashBucket(
                signature=signature, kind=record.kind,
                cause=record.cause, example=record,
            )
            by_signature[signature] = bucket
            order.append(signature)
        bucket.add(record)
    return TriageReport(
        buckets=[by_signature[s] for s in order],
        total_failures=len(records),
    )
