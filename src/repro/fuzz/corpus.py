"""Mutant corpus: interesting seeds kept for later campaigns.

The PoC fuzzer saves a mutated seed when it discovered *new* coverage
(relative to everything the campaign has seen) or caused a failure —
the seeds "saved for further investigation with the aim of crash
analysis" (§VII-3).  Deduplication is by coverage fingerprint so the
corpus stays small under the 10K-mutation barrage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.seed import VMSeed
from repro.fuzz.failures import FailureKind


@dataclass(frozen=True)
class CorpusEntry:
    """One retained mutant."""

    seed: VMSeed
    reason_kept: str  # "new-coverage" | "vm-crash" | "hypervisor-crash"
    new_loc: int = 0
    coverage_fingerprint: str = ""


def coverage_fingerprint(lines: frozenset[tuple[str, int]]) -> str:
    """Stable fingerprint of a coverage set."""
    digest = hashlib.sha256()
    for file, line in sorted(lines):
        digest.update(f"{file}:{line};".encode())
    return digest.hexdigest()[:16]


@dataclass
class Corpus:
    """The campaign's retained-mutant set."""

    entries: list[CorpusEntry] = field(default_factory=list)
    _fingerprints: set[str] = field(default_factory=set)

    def consider(
        self,
        seed: VMSeed,
        lines: frozenset[tuple[str, int]],
        new_loc: int,
        failure: FailureKind = FailureKind.NONE,
    ) -> bool:
        """Add the mutant if it is interesting; returns True if kept."""
        if failure is not FailureKind.NONE:
            self.entries.append(CorpusEntry(
                seed=seed, reason_kept=failure.value,
                coverage_fingerprint=coverage_fingerprint(lines),
            ))
            return True
        if new_loc <= 0:
            return False
        fingerprint = coverage_fingerprint(lines)
        if fingerprint in self._fingerprints:
            return False
        self._fingerprints.add(fingerprint)
        self.entries.append(CorpusEntry(
            seed=seed, reason_kept="new-coverage", new_loc=new_loc,
            coverage_fingerprint=fingerprint,
        ))
        return True

    def crashes(self) -> list[CorpusEntry]:
        return [
            e for e in self.entries
            if e.reason_kept in ("vm-crash", "hypervisor-crash")
        ]

    def __len__(self) -> int:
        return len(self.entries)
