"""Mutant corpus: interesting seeds kept for later campaigns.

The PoC fuzzer saves a mutated seed when it discovered *new* coverage
(relative to everything the campaign has seen) or caused a failure —
the seeds "saved for further investigation with the aim of crash
analysis" (§VII-3).  Deduplication is by coverage fingerprint so the
corpus stays small under the 10K-mutation barrage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.seed import VMSeed
from repro.fuzz.failures import FailureKind


@dataclass(frozen=True)
class CorpusEntry:
    """One retained mutant."""

    seed: VMSeed
    reason_kept: str  # "new-coverage" | "vm-crash" | "hypervisor-crash"
    new_loc: int = 0
    coverage_fingerprint: str = ""


def coverage_fingerprint(lines: frozenset[tuple[str, int]]) -> str:
    """Stable fingerprint of a coverage set."""
    digest = hashlib.sha256()
    for file, line in sorted(lines):
        digest.update(f"{file}:{line};".encode())
    return digest.hexdigest()[:16]


def entry_identity(entry: CorpusEntry) -> tuple:
    """Total order over entries, independent of discovery order.

    Covers every field (the packed seed bytes stand in for the seed),
    so two entries compare equal exactly when they are the same
    retained mutant — the key parallel shard merging dedups and sorts
    by.
    """
    return (
        entry.reason_kept,
        entry.coverage_fingerprint,
        entry.seed.pack(),
        entry.new_loc,
    )


@dataclass
class Corpus:
    """The campaign's retained-mutant set."""

    entries: list[CorpusEntry] = field(default_factory=list)
    _fingerprints: set[str] = field(default_factory=set)

    def consider(
        self,
        seed: VMSeed,
        lines: frozenset[tuple[str, int]],
        new_loc: int,
        failure: FailureKind = FailureKind.NONE,
    ) -> bool:
        """Add the mutant if it is interesting; returns True if kept."""
        if failure is not FailureKind.NONE:
            self.entries.append(CorpusEntry(
                seed=seed, reason_kept=failure.value,
                coverage_fingerprint=coverage_fingerprint(lines),
            ))
            return True
        if new_loc <= 0:
            return False
        fingerprint = coverage_fingerprint(lines)
        if fingerprint in self._fingerprints:
            return False
        self._fingerprints.add(fingerprint)
        self.entries.append(CorpusEntry(
            seed=seed, reason_kept="new-coverage", new_loc=new_loc,
            coverage_fingerprint=fingerprint,
        ))
        return True

    def merge(self, other: "Corpus") -> "Corpus":
        """Pure, order-insensitive merge of two corpora.

        Returns a new *canonical* corpus: entries from both sides,
        deduplicated by :func:`entry_identity` and sorted by it.  On
        canonical corpora the operation is commutative, associative,
        and idempotent, so parallel campaign shards merge to the same
        corpus regardless of worker count, scheduling, or retries.
        """
        seen: dict[tuple, CorpusEntry] = {}
        for entry in self.entries + other.entries:
            seen.setdefault(entry_identity(entry), entry)
        merged = Corpus()
        merged.entries = sorted(seen.values(), key=entry_identity)
        merged._fingerprints = {
            e.coverage_fingerprint for e in merged.entries
            if e.reason_kept == "new-coverage"
        }
        return merged

    @classmethod
    def from_entries(
        cls, entries: Iterable[CorpusEntry]
    ) -> "Corpus":
        """Rebuild a corpus from stored entries, order preserved.

        The inverse of persisting :attr:`entries` row by row (the
        campaign store's corpus table): the fingerprint index is
        reconstituted exactly as :meth:`consider` would have built it —
        only ``"new-coverage"`` entries claim their fingerprint — so a
        loaded corpus is structurally equal to the one that was saved,
        including discovery order.
        """
        corpus = cls()
        corpus.entries = list(entries)
        corpus._fingerprints = {
            e.coverage_fingerprint for e in corpus.entries
            if e.reason_kept == "new-coverage"
        }
        return corpus

    @classmethod
    def merge_all(cls, corpora: Iterable["Corpus"]) -> "Corpus":
        """n-way :meth:`merge` in one pass.

        Identical result to ``reduce(Corpus.merge, corpora, Corpus())``
        (merge is associative with the empty corpus as identity), but
        each entry's :func:`entry_identity` — which packs the seed — is
        computed once, and the canonical sort happens once instead of
        once per pairwise merge.
        """
        seen: dict[tuple, CorpusEntry] = {}
        for corpus in corpora:
            for entry in corpus.entries:
                seen.setdefault(entry_identity(entry), entry)
        merged = cls()
        merged.entries = [seen[key] for key in sorted(seen)]
        merged._fingerprints = {
            e.coverage_fingerprint for e in merged.entries
            if e.reason_kept == "new-coverage"
        }
        return merged

    def canonical(self) -> "Corpus":
        """This corpus in canonical (sorted, deduplicated) form."""
        return self.merge(Corpus())

    def copy(self) -> "Corpus":
        clone = Corpus()
        clone.entries = list(self.entries)
        clone._fingerprints = set(self._fingerprints)
        return clone

    def crashes(self) -> list[CorpusEntry]:
        return [
            e for e in self.entries
            if e.reason_kept in ("vm-crash", "hypervisor-crash")
        ]

    def __len__(self) -> int:
        return len(self.entries)
