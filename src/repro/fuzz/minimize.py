"""Crash-seed minimization: shrink a crashing mutant to its essence.

A fuzzing campaign hands triage a *mutated* seed plus the original it
was derived from; usually only one or two of the mutated entries
actually matter.  :func:`minimize_crash` reverts mutated entries back
to their original values while the crash (same signature) persists —
a delta-debugging pass over the seed's entry list — leaving the
minimal corrupting delta for the bug report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.manager import IrisManager
from repro.core.replay import ReplayOutcome
from repro.core.seed import SeedEntry, VMSeed
from repro.core.snapshot import VmSnapshot, restore_snapshot
from repro.core.tracestore import TraceLike
from repro.fuzz.failures import classify_result
from repro.fuzz.triage import crash_signature


@dataclass(frozen=True)
class EntryDelta:
    """One entry that differs between original and mutant."""

    index: int
    original: SeedEntry
    mutated: SeedEntry

    def describe(self) -> str:
        entry = self.mutated
        if entry.flag.name == "GPR":
            name = entry.gpr.name
        else:
            name = entry.vmcs_field.name
        return (
            f"entry #{self.index} {name}: "
            f"{self.original.value:#x} -> {entry.value:#x}"
        )


@dataclass
class MinimizationResult:
    """What minimization found."""

    minimal_seed: VMSeed
    essential_deltas: list[EntryDelta] = field(default_factory=list)
    initial_delta_count: int = 0
    executions: int = 0
    crash_reason: str = ""

    @property
    def reduced(self) -> bool:
        return len(self.essential_deltas) < self.initial_delta_count


def seed_deltas(original: VMSeed, mutant: VMSeed) -> list[EntryDelta]:
    """Entry-level differences between an original seed and a mutant."""
    if len(original.entries) != len(mutant.entries):
        raise ValueError(
            "minimization requires structurally identical seeds "
            "(the mutation rules only change values)"
        )
    return [
        EntryDelta(index=i, original=o, mutated=m)
        for i, (o, m) in enumerate(
            zip(original.entries, mutant.entries)
        )
        if o != m
    ]


def _apply(original: VMSeed, deltas: list[EntryDelta]) -> VMSeed:
    seed = VMSeed(
        exit_reason=original.exit_reason,
        entries=list(original.entries),
    )
    for delta in deltas:
        seed.entries[delta.index] = delta.mutated
    return seed


def original_seed(trace: TraceLike, seed_index: int) -> VMSeed:
    """The un-mutated seed a crashing mutant was derived from.

    On a lazy :class:`~repro.core.tracestore.TraceReader` this decodes
    exactly one record — triage over a multi-million-exit spool file
    no longer materializes the whole trace to recover one original.
    """
    if not 0 <= seed_index < len(trace):
        raise ValueError(
            f"seed index {seed_index} outside trace of "
            f"{len(trace)} records"
        )
    return trace.records[seed_index].seed


def minimize_crash(
    manager: IrisManager,
    original: VMSeed,
    mutant: VMSeed,
    state: VmSnapshot,
    max_executions: int = 64,
) -> MinimizationResult:
    """Shrink ``mutant``'s delta against ``original`` while the crash
    signature is preserved.

    ``state`` is the VM state the seed crashes from (the fuzzer's
    target-state snapshot); it is restored around every probe.
    """
    assert manager.dummy_vm is not None and manager.replayer
    dummy = manager.dummy_vm
    hv = manager.hv

    def probe(seed: VMSeed):
        restore_snapshot(hv, dummy, state)
        result = manager.replayer.submit(seed)
        if result.outcome is ReplayOutcome.OK:
            return None
        record = classify_result(result, seed, 0, hv.log)
        return record

    deltas = seed_deltas(original, mutant)
    baseline = probe(mutant)
    executions = 1
    if baseline is None:
        raise ValueError("the mutant does not crash from this state")
    target_signature = crash_signature(baseline)

    kept = list(deltas)
    changed = True
    while changed and executions < max_executions:
        changed = False
        for delta in list(kept):
            if executions >= max_executions:
                break
            candidate = [d for d in kept if d is not delta]
            record = probe(_apply(original, candidate))
            executions += 1
            if record is not None and \
                    crash_signature(record) == target_signature:
                kept = candidate
                changed = True

    # Leave the dummy VM healthy for whoever runs next.
    restore_snapshot(hv, dummy, state)
    return MinimizationResult(
        minimal_seed=_apply(original, kept),
        essential_deltas=kept,
        initial_delta_count=len(deltas),
        executions=executions,
        crash_reason=baseline.crash_reason,
    )
