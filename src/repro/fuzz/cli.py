"""``iris-fuzz``: run the PoC fuzzing campaign (paper §VII).

Example::

    iris-fuzz -w cpu-bound -n 800 --mutations 500 \
        --reasons RDTSC,CPUID,VMCALL
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.analysis import render_table
from repro.arch.backend import BACKEND_NAMES
from repro.core.manager import IrisManager
from repro.fuzz.fuzzer import IrisFuzzer
from repro.fuzz.mutation_engine import ENGINE_NAMES
from repro.fuzz.mutations import MUTATION_RULES, MutationArea
from repro.fuzz.testcase import plan_test_cases
from repro.guest.workloads import WorkloadName
from repro.obs.cliobs import add_obs_options, cli_observability
from repro.vmx.exit_reasons import ExitReason

#: Default exit-reason grid: the rows of Table I.
DEFAULT_REASONS = (
    "EXTERNAL_INTERRUPT", "INTERRUPT_WINDOW", "CPUID", "HLT", "RDTSC",
    "VMCALL", "CR_ACCESS", "IO_INSTRUCTION", "EPT_VIOLATION",
)

#: Pinned exit-code contract (tests/fuzz/test_fuzz_cli.py).  A campaign
#: that *finds crashes* and one that *aborts mid-way* used to both be
#: indistinguishable from a clean run (everything returned 0); scripts
#: driving long campaigns need the distinction.
EXIT_OK = 0              # campaign finished, no crashes found
EXIT_NO_SEEDS = 1        # nothing to fuzz (no matching seeds)
EXIT_USAGE = 2           # bad arguments / store misuse
EXIT_CRASHES_FOUND = 3   # campaign finished and found crashes
EXIT_ABORTED = 4         # campaign stopped before completing its plan
EXIT_DIVERGENCES_FOUND = 5  # no crashes, but cross-arch divergences
#                             (crashes take precedence when both occur)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="iris-fuzz",
        description="IRIS-based fuzzer prototype (paper Table I)",
    )
    parser.add_argument(
        "-w", "--workload", default="cpu-bound",
        choices=[w.value for w in WorkloadName],
    )
    parser.add_argument("-n", "--exits", type=int, default=1000,
                        help="trace length to record first")
    parser.add_argument("--mutations", type=int, default=1000,
                        help="mutations per test case (paper: 10000)")
    parser.add_argument(
        "--reasons", default=",".join(DEFAULT_REASONS),
        help="comma-separated ExitReason names to target",
    )
    parser.add_argument(
        "--area", choices=["vmcs", "gpr", "both"], default="both",
        help="seed area to mutate",
    )
    parser.add_argument(
        "--rule", choices=sorted(MUTATION_RULES), default=None,
        help="PoC mutator (default: bit-flip).  Only meaningful with "
             "--engine poc: the smart engine runs its own staged "
             "pipeline, so combining --rule with --engine smart is a "
             "usage error rather than a silently ignored flag.",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="poc",
        help="mutation engine: 'poc' (default) is the paper's flat "
             "single-rule stack; 'smart' is the structure-aware "
             "staged pipeline (dictionary/structural/havoc/splice "
             "with a cost-aware power schedule).  Both honor the "
             "same determinism contract: results are byte-identical "
             "for any --jobs value, transport, or --resume.",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        # Explicit dest: the obs layer's --trace flag already claims
        # the derived name "trace_out" (add_obs_options).
        "--trace-out", dest="campaign_trace_out", metavar="FILE",
        default=None,
        help="also stream the recorded campaign-input trace to FILE "
             "in the seekable IRISTRC2 format (inspect later with "
             "`iris inspect`/`iris stats`, or re-fuzz without "
             "re-recording)",
    )
    parser.add_argument(
        "--arch", choices=list(BACKEND_NAMES), default="vmx",
        help="virtualization backend to fuzz on (paper §IX)",
    )
    parser.add_argument(
        "--differential", action="store_true",
        help="cross-arch differential oracle: replay every mutant on "
             "both backends (vmx natively, svm through the seed "
             "translation) and report behavioral divergences — "
             "disagreeing crash outcomes, echo-write sets, or "
             "noise-filtered coverage deltas.  Requires --arch vmx; "
             "exits 5 when divergences (and no crashes) are found.",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for the campaign; 1 (default) keeps "
             "the classic serial path.  Results are independent of "
             "the worker count: each cell's RNG is derived from "
             "(campaign seed, cell index), so --jobs only changes "
             "wall-clock time.",
    )
    parser.add_argument(
        "--shards-per-cell", type=int, default=1,
        help="split each cell's mutation budget across this many "
             "shards (more pool parallelism for few-cell campaigns)",
    )
    remote = parser.add_argument_group(
        "remote workers",
        "ship waves to socket-attached iris-worker processes instead "
        "of the local worker pool; shards are hermetic, so the "
        "campaign output is byte-identical either way",
    )
    remote.add_argument(
        "--workers", metavar="HOST:PORT[,HOST:PORT,...]", default=None,
        help="comma-separated iris-worker addresses (start each with "
             "`iris-worker --port 0` and read the assigned port from "
             "its banner); --jobs is ignored while remote workers "
             "are attached",
    )
    group = parser.add_argument_group(
        "resumable campaigns",
        "persist per-wave checkpoints to a SQLite store and continue "
        "an interrupted campaign exactly where it left off",
    )
    group.add_argument(
        "--store", metavar="FILE", default=None,
        help="SQLite campaign store; every completed wave is "
             "checkpointed transactionally, so an interrupted "
             "campaign loses at most the wave in flight",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="continue the campaign held in --store from its last "
             "completed wave (recording parameters are restored from "
             "the store; the final output is byte-identical to an "
             "uninterrupted run)",
    )
    group.add_argument(
        "--wave-size", type=int, default=1,
        help="cells per checkpointed wave (default 1); purely a "
             "checkpoint-granularity knob — results are identical "
             "for any value",
    )
    group.add_argument(
        # Fault-injection hook for the crash-recovery test suite:
        # abort (after checkpointing) once wave N commits.
        "--crash-after-wave", type=int, default=None,
        help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--no-fast-reset", dest="fast_reset", action="store_false",
        help="disable the in-place dummy-VM reset and delta snapshot "
             "restore; every test case rebuilds the dummy VM from "
             "scratch (the pre-fast-reset behavior, kept as an escape "
             "hatch and for A/B measurements — results are identical "
             "either way, only slower)",
    )
    add_obs_options(parser)
    return parser


def _restore_stored_args(args: argparse.Namespace) -> bool | None:
    """Overwrite the request with the stored campaign's parameters.

    Resume must re-record the *identical* trace and re-plan the
    identical cells, so the stored config — not whatever flags this
    invocation happened to pass — is authoritative for everything in
    the campaign's deterministic identity.  Returns the stored
    ``collect_metrics`` flag.
    """
    from repro.campaign import CampaignStore
    from repro.errors import CorruptStoreError, StoreMismatchError

    with CampaignStore(args.store) as probe:
        if not probe.initialized:
            raise StoreMismatchError(
                f"campaign store {args.store!r} holds no campaign "
                "to resume"
            )
        # Validate *up front*, before the expensive re-record: a torn
        # store used to sail through this probe and only explode
        # mid-wave, after minutes of recording.  Fail in the first
        # second instead, and say what to do about it.
        try:
            probe.validate()
        except CorruptStoreError as exc:
            raise CorruptStoreError(
                f"{exc} — resume refused before any work was done; "
                "restore the store file from a backup, or start a "
                "fresh campaign with a new --store path"
            ) from exc
        stored = probe.config()
    extra = dict(stored.extra)
    args.workload = extra["workload"]
    args.exits = int(extra["exits"])
    args.mutations = int(extra["mutations"])
    args.reasons = extra["reasons"]
    args.area = extra["area"]
    args.rule = extra["rule"]
    args.seed = int(extra["seed"])
    args.arch = stored.arch
    args.fast_reset = stored.fast_reset
    args.shards_per_cell = stored.shards_per_cell
    args.wave_size = stored.wave_size
    args.differential = stored.differential
    args.engine = stored.engine
    return stored.collect_metrics


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return EXIT_USAGE
    if args.shards_per_cell < 1:
        print(
            f"--shards-per-cell must be >= 1, got "
            f"{args.shards_per_cell}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.mutations < 1:
        print(
            f"--mutations must be >= 1, got {args.mutations}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.wave_size < 1:
        print(
            f"--wave-size must be >= 1, got {args.wave_size}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.resume and args.store is None:
        print("--resume requires --store", file=sys.stderr)
        return EXIT_USAGE
    if args.engine == "smart" and args.rule is not None:
        # Reject rather than silently ignore: the smart engine runs
        # its staged pipeline, not a single PoC rule.
        print(
            "--rule selects the poc engine's single mutator and has "
            "no effect on the smart engine's staged pipeline; drop "
            "--rule or use --engine poc",
            file=sys.stderr,
        )
        return EXIT_USAGE
    worker_addresses: list[str] = []
    if args.workers:
        from repro.campaign import parse_worker_address

        worker_addresses = [
            spec.strip()
            for spec in args.workers.split(",") if spec.strip()
        ]
        if not worker_addresses:
            print("--workers got no addresses", file=sys.stderr)
            return EXIT_USAGE
        try:
            for spec in worker_addresses:
                parse_worker_address(spec)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return EXIT_USAGE

    stored_collect_metrics: bool | None = None
    if args.resume:
        from repro.errors import CampaignStoreError, StoreMismatchError

        try:
            stored_collect_metrics = _restore_stored_args(args)
        except StoreMismatchError as exc:
            print(str(exc), file=sys.stderr)
            return EXIT_USAGE
        except CampaignStoreError as exc:
            print(f"campaign status: aborted — {exc}", file=sys.stderr)
            return EXIT_ABORTED
    # After the resume restore: a resumed differential campaign gets
    # its mode (and arch) from the store, not from this invocation.
    if args.differential and args.arch != "vmx":
        print(
            "--differential fuzzes the vmx backend natively and "
            "mirrors it on svm via the seed translation; it requires "
            f"--arch vmx (got --arch {args.arch})",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.rule is None:
        args.rule = "bit-flip"
    rng = random.Random(args.seed)

    reasons = []
    for name in args.reasons.split(","):
        name = name.strip().upper()
        try:
            reasons.append(ExitReason[name])
        except KeyError:
            print(f"unknown exit reason: {name}", file=sys.stderr)
            return EXIT_USAGE

    areas = {
        "vmcs": (MutationArea.VMCS,),
        "gpr": (MutationArea.GPR,),
        "both": (MutationArea.VMCS, MutationArea.GPR),
    }[args.area]

    with cli_observability(args) as obs:
        manager = IrisManager(arch=args.arch, fast_reset=args.fast_reset)
        precondition = (
            "bios" if args.workload in ("os-boot", "full-boot")
            else "boot"
        )
        print(f"recording {args.exits} exits of {args.workload}...")
        session = manager.record_workload(
            args.workload, n_exits=args.exits,
            precondition=precondition,
        )
        if args.campaign_trace_out is not None:
            from repro.core.tracestore import write_trace

            write_trace(session.trace, args.campaign_trace_out)
            print(
                f"campaign input trace -> {args.campaign_trace_out}"
            )
        cases = plan_test_cases(
            session.trace, reasons, areas=areas,
            n_mutations=args.mutations, rng=rng,
            engine=args.engine,
        )
        if not cases:
            print(
                "no seeds with the requested exit reasons in the trace"
            )
            return EXIT_NO_SEEDS
        for case in cases:
            if case.mutation_rule != args.rule:
                object.__setattr__(case, "mutation_rule", args.rule)

        campaign_stats = None
        campaign_metrics = None
        # Observability and persistence always go through the campaign
        # engine, even at --jobs 1: shards run hermetically there, so
        # the merged metrics snapshot is identical for every worker
        # count (the jobs-invariance the golden tests pin) and wave
        # checkpoints are well-defined.  Without obs or a store, jobs=1
        # keeps the classic serial path.
        use_campaign = (
            args.jobs > 1 or args.shards_per_cell > 1
            or obs is not None or args.store is not None
            or args.wave_size > 1 or bool(worker_addresses)
            or args.differential
        )
        if use_campaign:
            from repro.campaign import (
                CampaignController,
                CampaignInterrupted,
                CampaignStore,
            )
            from repro.errors import (
                CampaignStoreError,
                StoreMismatchError,
            )
            from repro.fuzz.parallel import ParallelCampaign

            def report(event):
                kind, payload = event
                if kind == "shard-completed":
                    case = cases[payload.cell_index]
                    print(
                        f"  [{payload.cell_index + 1}/{len(cases)}] "
                        f"{case.exit_reason.name}/{case.area.value} "
                        f"shard {payload.shard_index}: "
                        f"{payload.mutations_run} mutations in "
                        f"{payload.duration_seconds:.2f}s "
                        f"({payload.mutations_per_second:.0f} mut/s)"
                    )
                else:
                    print(f"  !! {kind}: {payload.describe()}")

            collect_metrics = (
                stored_collect_metrics
                if stored_collect_metrics is not None
                else obs is not None and obs.wants_metrics
            )
            transport = None
            if worker_addresses:
                from repro.campaign import SocketTransport

                transport = SocketTransport(worker_addresses)
                print(
                    f"waves run on {transport.describe()} "
                    "(results identical to a local run)"
                )
            engine = ParallelCampaign(
                session.trace, session.snapshot, cases,
                campaign_seed=args.seed, jobs=args.jobs,
                shards_per_cell=args.shards_per_cell, on_event=report,
                arch=args.arch,
                collect_metrics=collect_metrics,
                fast_reset=args.fast_reset,
                differential=args.differential,
                transport=transport,
            )
            store = (
                CampaignStore(args.store)
                if args.store is not None else None
            )
            controller = CampaignController(
                engine, store,
                wave_size=args.wave_size,
                config_extra=(
                    ("area", args.area),
                    ("exits", str(args.exits)),
                    ("mutations", str(args.mutations)),
                    ("reasons", ",".join(r.name for r in reasons)),
                    ("rule", args.rule),
                    ("seed", str(args.seed)),
                    ("workload", args.workload),
                ),
                crash_after_wave=args.crash_after_wave,
            )
            try:
                outcome = controller.run(resume=args.resume)
            except CampaignInterrupted as exc:
                print(
                    f"campaign status: aborted — {exc}; completed "
                    f"waves are saved, continue with "
                    f"--store {args.store} --resume"
                )
                return EXIT_ABORTED
            except StoreMismatchError as exc:
                print(str(exc), file=sys.stderr)
                return EXIT_USAGE
            except CampaignStoreError as exc:
                print(
                    f"campaign status: aborted — {exc}",
                    file=sys.stderr,
                )
                return EXIT_ABORTED
            finally:
                if store is not None:
                    store.close()
            if outcome.waves_resumed:
                print(
                    f"resumed: {outcome.waves_resumed}/"
                    f"{outcome.waves_total} wave(s) restored from "
                    f"{args.store}"
                )
            campaign_stats = outcome.stats
            campaign_metrics = outcome.metrics
            results = outcome.results
            if obs is not None:
                obs.add_snapshot(outcome.metrics)
            for cell_index in outcome.abandoned_cells:
                case = cases[cell_index]
                print(
                    f"cell {case.exit_reason.name}/{case.area.value} "
                    "abandoned after retry — excluded from the table",
                    file=sys.stderr,
                )
        else:
            fuzzer = IrisFuzzer(manager, rng=rng,
                                fast_reset=args.fast_reset)
            results = [
                fuzzer.run_test_case(
                    case, from_snapshot=session.snapshot
                )
                for case in cases
            ]

    rows = []
    total_crashes = 0
    all_failures = []
    for result in results:
        total_crashes += result.vm_crashes + result.hypervisor_crashes
        all_failures.extend(result.failures)
        rows.append((
            result.exit_reason.name,
            result.area.value.upper(),
            f"+{result.coverage_increase_pct:.0f}%",
            f"{100 * result.vm_crash_rate:.1f}%",
            f"{100 * result.hypervisor_crash_rate:.1f}%",
            len(result.corpus),
        ))
    print(render_table(
        ["exit reason", "area", "new cov", "VM crash", "HV crash",
         "corpus"],
        rows,
        title=f"Fuzzing campaign: {args.workload} "
              f"({args.mutations} mutations/case, "
              f"engine={args.engine}"
              + (f", rule={args.rule})" if args.engine == "poc"
                 else ")"),
    ))
    print(f"total failures observed: {total_crashes}")
    if campaign_stats is not None:
        print(f"campaign stats: {campaign_stats.describe()}")
    if campaign_metrics is not None:
        from repro.obs import flight_summary

        print()
        print(flight_summary(campaign_metrics))
    if obs is not None:
        if obs.metrics_path:
            print(f"metrics snapshot -> {obs.metrics_path}")
        if obs.trace_path:
            print(f"trace events -> {obs.trace_path}")
    if all_failures:
        from repro.fuzz.triage import triage

        report = triage(all_failures)
        print()
        print(render_table(
            ["kind", "cause", "count", "seed reasons", "example"],
            report.rows(),
            title=f"Crash triage: {report.unique_crashes} distinct "
                  f"crashes from {report.total_failures} retained "
                  "failures",
        ))
    total_divergences = 0
    if args.differential:
        from repro.fuzz.differential import (
            iter_divergences,
            render_divergence_report,
        )

        all_divergences = list(iter_divergences(results))
        total_divergences = len(all_divergences)
        seeds_compared = sum(r.seeds_compared for r in results)
        untranslatable = sum(
            r.untranslatable_seeds for r in results
        )
        print()
        print(render_divergence_report(
            all_divergences,
            seeds_compared=seeds_compared,
            untranslatable_seeds=untranslatable,
        ))
        print(
            f"differential oracle: {total_divergences} divergence(s) "
            f"retained from {seeds_compared} seeds compared "
            f"({untranslatable} untranslatable)"
        )
    if total_crashes:
        print(
            f"campaign status: finished — {total_crashes} "
            "crash(es) found"
        )
        return EXIT_CRASHES_FOUND
    if total_divergences:
        print(
            f"campaign status: finished — {total_divergences} "
            "divergence(s) found"
        )
        return EXIT_DIVERGENCES_FOUND
    print("campaign status: finished — no crashes found")
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
