"""Coverage-guided fuzzing (paper §IX: "we plan to ... develop a
fuzzer aimed at discovering vulnerabilities", beyond the PoC's naive
single bit-flip).

An evolutionary loop in the AFL mould, built entirely on IRIS
primitives:

* the queue holds seeds that discovered new hypervisor coverage;
* each round the staged pipeline
  (:class:`repro.fuzz.mutation_engine.SmartEngine`) picks a queue
  entry through its cost-aware power schedule, applies one stage —
  dictionary substitution, structural crafting, havoc, or splice —
  and submits the mutant through the replay mechanism;
* mutants that cover new (noise-filtered) lines join the queue and
  feed the harvested value dictionary; crashing mutants are retained
  for triage and the VM state is restored from the target-state
  snapshot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.manager import IrisManager
from repro.core.replay import ReplayOutcome
from repro.core.snapshot import VmSnapshot, restore_snapshot, take_snapshot
from repro.fuzz.differential import (
    MAX_DIVERGENCES_KEPT,
    DifferentialOracle,
    DivergenceRecord,
)
from repro.fuzz.failures import FailureKind, FailureRecord, classify_result
from repro.fuzz.fuzzer import IrisFuzzer
from repro.fuzz.mutation_engine import PowerSchedule, SmartEngine
from repro.fuzz.testcase import FuzzTestCase


@dataclass
class GuidedCampaignReport:
    """Outcome of a coverage-guided campaign."""

    executions: int = 0
    total_new_loc: int = 0
    coverage_curve: list[int] = field(default_factory=list)
    queue_size: int = 1
    max_depth: int = 0
    vm_crashes: int = 0
    hypervisor_crashes: int = 0
    failures: list[FailureRecord] = field(default_factory=list)
    #: Differential-mode observations (empty without an oracle).
    divergences: tuple[DivergenceRecord, ...] = ()
    seeds_compared: int = 0
    untranslatable_seeds: int = 0


class CoverageGuidedFuzzer:
    """Evolutionary mutation scheduling over the IRIS replay."""

    def __init__(
        self,
        manager: IrisManager,
        rng: random.Random | None = None,
        max_mutation_stack: int = 3,
        max_failures_kept: int = 64,
        oracle: DifferentialOracle | None = None,
        schedule: PowerSchedule | None = None,
    ) -> None:
        self.manager = manager
        self.rng = rng or random.Random(0xC0F)
        self.max_mutation_stack = max_mutation_stack
        self.max_failures_kept = max_failures_kept
        self.oracle = oracle
        self.schedule = schedule

    def run_campaign(
        self,
        case: FuzzTestCase,
        iterations: int,
        from_snapshot: VmSnapshot | None = None,
    ) -> GuidedCampaignReport:
        """Run ``iterations`` guided executions from a test case."""
        manager = self.manager
        hv = manager.hv
        # Reach the target VM state exactly like the PoC fuzzer.
        IrisFuzzer(manager, rng=self.rng)._reach_target_state(
            case, from_snapshot
        )
        assert manager.replayer is not None and manager.dummy_vm
        replayer = manager.replayer
        dummy = manager.dummy_vm

        baseline = replayer.submit(case.target_seed)
        if baseline.outcome is not ReplayOutcome.OK:
            raise RuntimeError(
                f"baseline seed crashed: {baseline.crash_reason}"
            )
        state_r = take_snapshot(hv, dummy)
        known = IrisFuzzer._denoise(baseline.coverage_lines)

        engine = SmartEngine(
            case, arch=manager.arch, schedule=self.schedule,
            max_havoc_stack=self.max_mutation_stack,
        )
        report = GuidedCampaignReport()
        divergences: list[DivergenceRecord] = []
        if self.oracle is not None:
            baseline_divergence = self.oracle.begin_case(
                case, from_snapshot, known
            )
            if baseline_divergence is not None:
                divergences.append(baseline_divergence)

        for index in range(iterations):
            cycles_before = hv.clock.now
            mutant = engine.next_mutant(self.rng)
            outcome = replayer.submit(mutant)
            report.executions += 1

            if self.oracle is not None:
                record = self.oracle.observe(index, mutant, outcome)
                if (
                    record is not None
                    and len(divergences) < MAX_DIVERGENCES_KEPT
                ):
                    divergences.append(record)

            failure = classify_result(
                outcome, mutant, report.executions, hv.log
            )
            if failure is not None:
                if failure.kind is FailureKind.VM_CRASH:
                    report.vm_crashes += 1
                else:
                    report.hypervisor_crashes += 1
                if len(report.failures) < self.max_failures_kept:
                    report.failures.append(failure)
                restore_snapshot(hv, dummy, state_r)
                engine.feedback(
                    mutant, new_loc=0,
                    cost_cycles=hv.clock.now - cycles_before,
                    crashed=True,
                )
                report.coverage_curve.append(report.total_new_loc)
                continue

            lines = IrisFuzzer._denoise(outcome.coverage_lines)
            fresh = lines - known
            if fresh:
                known |= fresh
                report.total_new_loc += len(fresh)
            engine.feedback(
                mutant, new_loc=len(fresh),
                cost_cycles=hv.clock.now - cycles_before,
            )
            report.max_depth = engine.max_depth
            report.coverage_curve.append(report.total_new_loc)

        report.queue_size = engine.queue_size
        if self.oracle is not None:
            report.divergences = tuple(divergences)
            report.seeds_compared = self.oracle.seeds_compared
            report.untranslatable_seeds = (
                self.oracle.untranslatable_seeds
            )
        return report
