"""Fuzz test-case structure (paper §VII-1 and Fig. 11).

A test case is characterized by: the replayed VM behavior W of a target
workload, a target seed ``VMseed_R`` chosen within that behavior, and
the seed area A ∈ {VMCS, GPR} to mutate.  Running it replays W up to
``VMseed_R`` (reaching the linked VM state) and then submits N mutated
versions of the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.tracestore import TraceLike
from repro.fuzz.mutation_engine import ENGINE_NAMES
from repro.fuzz.mutations import MutationArea
from repro.vmx.exit_reasons import ExitReason


@dataclass(frozen=True)
class FuzzTestCase:
    """One planned fuzzing test case."""

    trace: TraceLike
    seed_index: int
    area: MutationArea
    n_mutations: int = 10_000
    mutation_rule: str = "bit-flip"
    #: Which mutation engine runs the case: ``"poc"`` is the paper's
    #: flat single-rule stack, ``"smart"`` the structure-aware staged
    #: pipeline (:mod:`repro.fuzz.mutation_engine`).  Part of the
    #: campaign's deterministic identity.
    engine: str = "poc"

    def __post_init__(self) -> None:
        if not 0 <= self.seed_index < len(self.trace):
            raise ValueError(
                f"seed index {self.seed_index} outside trace of "
                f"{len(self.trace)} records"
            )
        if self.n_mutations < 1:
            raise ValueError("need at least one mutation")
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown mutation engine {self.engine!r} "
                f"(expected one of {', '.join(ENGINE_NAMES)})"
            )

    @property
    def target_seed(self):
        return self.trace.records[self.seed_index].seed

    @property
    def exit_reason(self) -> ExitReason:
        return self.target_seed.reason

    def describe(self) -> str:
        return (
            f"W={self.trace.workload!r} seed#{self.seed_index} "
            f"({self.exit_reason.name}) area={self.area.value} "
            f"N={self.n_mutations}"
        )


def plan_test_cases(
    trace: TraceLike,
    reasons: list[ExitReason],
    areas: tuple[MutationArea, ...] = (
        MutationArea.VMCS, MutationArea.GPR,
    ),
    n_mutations: int = 10_000,
    rng: random.Random | None = None,
    engine: str = "poc",
) -> list[FuzzTestCase]:
    """Plan the Table-I grid: for each requested exit reason present in
    the trace, pick a random target seed of that reason and build one
    test case per mutation area."""
    rng = rng or random.Random(0)
    cases: list[FuzzTestCase] = []
    # reasons() is answered from the footer index alone on a lazy
    # TraceReader, so planning decodes no record payloads; the
    # candidate list (and thus the RNG stream) is identical to the
    # old enumerate-the-records scan.
    trace_reasons = trace.reasons()
    for reason in reasons:
        candidates = [
            i for i, r in enumerate(trace_reasons)
            if r is reason
        ]
        if not candidates:
            continue  # Table I leaves these cells empty ("-")
        index = rng.choice(candidates)
        for area in areas:
            cases.append(FuzzTestCase(
                trace=trace, seed_index=index, area=area,
                n_mutations=n_mutations, engine=engine,
            ))
    return cases
