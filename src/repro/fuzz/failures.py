"""Failure detection and classification (paper §VII-3).

"By using scripts that analyze hypervisor behavior and logs, the PoC
fuzzer can detect failures occurring during the execution of test
cases, that we classify as hypervisor or VM crashes."  This module is
those scripts: it maps replay outcomes plus hypervisor-log evidence to
a :class:`FailureKind` and keeps the artifacts needed for later crash
triage (the submitted seed, the log tail, the crash cause).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.replay import ReplayOutcome, SeedReplayResult
from repro.core.seed import VMSeed
from repro.hypervisor.xenlog import XenLog


class FailureKind(enum.Enum):
    """Failure taxonomy of the PoC fuzzer."""

    NONE = "none"
    VM_CRASH = "vm-crash"
    HYPERVISOR_CRASH = "hypervisor-crash"


#: Log needles used to refine crash causes (double faults, invalid
#: operations, page faults, ... — the causes §VII-3 enumerates).
_CAUSE_PATTERNS: tuple[tuple[str, str], ...] = (
    ("bad RIP", "invalid guest RIP for cached mode"),
    ("VM entry fail", "VM-entry consistency check failure"),
    ("triple fault", "guest triple fault"),
    ("unexpected VM exit reason", "unroutable exit reason"),
    ("unexpected exit reason", "unroutable exit reason"),
    ("bad instruction length", "corrupt instruction-length field"),
    ("reserved exit-reason bits", "corrupt exit-reason field"),
    ("VM-entry failure reported", "corrupt exit-reason field"),
    ("non-canonical guest RIP", "corrupt guest RIP"),
    ("PANIC", "hypervisor panic (BUG_ON/assert)"),
    ("EPT violation at impossible GPA", "guest-physical address "
     "beyond the p2m"),
)


@dataclass(frozen=True)
class FailureRecord:
    """One observed failure, saved for crash analysis (paper §VII-3)."""

    kind: FailureKind
    cause: str
    crash_reason: str
    mutation_index: int
    seed: VMSeed
    log_tail: tuple[str, ...] = field(default=())

    def describe(self) -> str:
        return (
            f"[{self.kind.value}] mutation #{self.mutation_index}: "
            f"{self.cause} ({self.crash_reason})"
        )


def failure_identity(record: FailureRecord) -> tuple:
    """Total order over failure records, independent of shard order.

    Mutation index first: when merged shards overflow the per-cell
    retention cap, the earliest-discovered failures win, matching the
    serial fuzzer's first-``MAX_FAILURES_KEPT`` behavior.  The
    remaining fields break ties deterministically.
    """
    return (
        record.mutation_index,
        record.kind.value,
        record.cause,
        record.crash_reason,
        record.seed.pack(),
        record.log_tail,
    )


def diagnose_cause(crash_reason: str, log: XenLog) -> str:
    """Refine a crash reason, preferring the reason text itself.

    The log is shared across a whole campaign, so grepping it is only
    a *fallback* for reasons that carry no recognizable cause — else
    an early panic would contaminate every later classification.
    """
    for needle, cause in _CAUSE_PATTERNS:
        if needle in crash_reason:
            return cause
    for needle, cause in _CAUSE_PATTERNS:
        if log.grep(needle):
            return cause
    return "unclassified failure"


def classify_result(
    result: SeedReplayResult,
    seed: VMSeed,
    mutation_index: int,
    log: XenLog,
) -> FailureRecord | None:
    """Map a replay result to a failure record (None when healthy)."""
    if result.outcome is ReplayOutcome.OK:
        return None
    kind = (
        FailureKind.VM_CRASH
        if result.outcome is ReplayOutcome.VM_CRASH
        else FailureKind.HYPERVISOR_CRASH
    )
    reason = result.crash_reason or "unknown"
    return FailureRecord(
        kind=kind,
        cause=diagnose_cause(reason, log),
        crash_reason=reason,
        mutation_index=mutation_index,
        seed=seed,
        log_tail=tuple(log.tail(6)),
    )
