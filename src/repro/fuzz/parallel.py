"""Parallel fuzzing campaign engine with deterministic shard merging.

The paper's Table I campaign (workload x exit reason x mutation area,
N mutations per cell) is embarrassingly parallel: every cell replays
the same recorded behavior up to its target seed and then mutates
independently.  :class:`ParallelCampaign` shards those cells (and,
optionally, each cell's mutation budget) across a ``multiprocessing``
worker pool, the way NecoFuzz scales virtualization fuzzing across
many harness VMs — while keeping rr's bargain: parallel replay is only
trustworthy if it stays bit-for-bit deterministic.

The determinism contract
------------------------

* Every shard runs in a **fresh** :class:`IrisManager` (fresh simulated
  hypervisor, clock at zero, empty log), so nothing about the host
  process, prior shards, or scheduling leaks into a shard's outcome.
* Each shard's ``random.Random`` seed is derived from
  ``(campaign_seed, cell_index, shard_index)`` via
  :func:`derive_shard_seed` — never from worker identity or wall time.
* Per-shard artifacts merge through order-insensitive operations:
  :meth:`FuzzResult.merge`, :meth:`Corpus.merge`, and
  :meth:`CoverageMap.union`.

Together these make the merged campaign result a pure function of
``(trace, snapshot, cases, campaign_seed, shards_per_cell, arch,
fast_reset, differential, engine)``: the ``jobs`` worker count never changes
results, only wall-clock time.  ``fast_reset`` appears in the tuple for
honesty's sake only — the fast-reset differential tests pin that
flipping it does not change the merged result either (in differential
mode too: the cross-arch oracle always resets its secondary backend on
the full-restore path, so the flag only touches the primary side,
whose fast/full equivalence the same tests already pin).

Fault isolation
---------------

A worker that dies mid-shard (hypervisor panic escaping the harness, a
pickling error, a timeout) is reported on the stats channel, its shard
is retried exactly once, and a shard that fails its retry is
*abandoned* — logged, surfaced in
:attr:`CampaignResult.abandoned_cells`, and excluded from the merge —
so the campaign degrades gracefully instead of aborting.

Transports
----------

*Where* shards run is delegated to a
:class:`repro.campaign.transport.WorkerTransport`.  The default is the
:class:`~repro.campaign.transport.LocalPoolTransport` — one warm
``multiprocessing`` pool per campaign, created lazily, primed once
with the (large) trace and snapshot, reused across waves and retries,
and torn down only on campaign exit or a shard hang.  Passing
``transport=`` (e.g. a
:class:`~repro.campaign.transport.SocketTransport` attached to
``iris-worker`` processes) moves execution elsewhere without touching
the engine: shards are hermetic, so the merged result is byte-identical
across transports — the property the transport differential tests pin.

Worker identity cannot leak into results — every shard builds a fresh
:class:`IrisManager` from the shipped context — so re-running a retry
on the worker that reported the original fault is safe, as is
reassigning a shard from a dead remote worker to a surviving one.
"""

from __future__ import annotations

import hashlib
import multiprocessing.pool
import random
import time
from dataclasses import dataclass, field
from functools import reduce
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # circular at runtime: transport imports this module
    from repro.campaign.transport import WorkerTransport

from repro.core.seed import Trace
from repro.core.snapshot import VmSnapshot
from repro.fuzz.corpus import Corpus
from repro.fuzz.fuzzer import FuzzResult, IrisFuzzer
from repro.fuzz.mutations import MutationArea
from repro.fuzz.testcase import FuzzTestCase
from repro.hypervisor.coverage import CoverageMap
from repro.obs import MetricsRegistry, MetricsSnapshot, observability


# ---- deterministic seeding -------------------------------------------

def derive_shard_seed(
    campaign_seed: int, cell_index: int, shard_index: int = 0
) -> int:
    """Derive a shard's RNG seed from its campaign coordinates.

    SHA-256 over the coordinate string, so the seed is stable across
    Python versions, processes, and ``PYTHONHASHSEED`` — the property
    the jobs-independence contract rests on.
    """
    coords = f"iris-campaign:{campaign_seed}:{cell_index}:{shard_index}"
    digest = hashlib.sha256(coords.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def split_mutations(n_mutations: int, shards: int) -> list[int]:
    """Split a cell's mutation budget into per-shard slices.

    Deterministic: earlier shards absorb the remainder; zero-sized
    slices are never produced (a cell smaller than the shard count
    simply uses fewer shards).
    """
    if n_mutations < 1:
        raise ValueError("need at least one mutation")
    if shards < 1:
        raise ValueError("need at least one shard")
    shards = min(shards, n_mutations)
    base, extra = divmod(n_mutations, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


# ---- work units -------------------------------------------------------

@dataclass(frozen=True)
class ShardTask:
    """One unit of worker-pool work: a slice of one Table-I cell."""

    cell_index: int
    shard_index: int
    seed_index: int
    area: MutationArea
    n_mutations: int
    mutation_rule: str
    rng_seed: int
    attempt: int = 0
    #: Mutation engine the shard's fuzzer runs (``"poc"``/``"smart"``).
    #: Part of the task so the determinism contract covers it — the
    #: merged result is a function of the engine choice too.
    engine: str = "poc"
    #: Virtualization backend the shard's fresh hypervisor runs on.
    #: Part of the task (not ambient state) so the determinism contract
    #: covers it: the merged result is a function of the arch too.
    arch: str = "vmx"
    #: Fault-injection hook (tests / chaos drills): ``"raise"`` makes
    #: the worker raise, ``"hang"`` makes it sleep past any timeout.
    fault_kind: str | None = None
    #: Capture a hermetic per-shard :class:`MetricsSnapshot` (a fresh
    #: wall-clock-free registry installed around the shard, so the
    #: snapshot is a pure function of the task — mergeable across any
    #: ``jobs`` value without changing totals).
    collect_metrics: bool = False
    #: Whether the shard's manager/fuzzer run with the fast-reset
    #: (delta-restore) paths.  Part of the task so the determinism
    #: contract covers it — the fast-reset differential tests compare
    #: whole campaigns across this flag.
    fast_reset: bool = True
    #: Differential mode: the shard also replays every mutant on a
    #: secondary SVM backend (through the seed translation) and records
    #: cross-backend divergences in its result.  Part of the task so
    #: the mode rides the same determinism contract as ``arch``.
    differential: bool = False


@dataclass(frozen=True)
class ShardOutcome:
    """What a worker sends back for one task (result *or* fault)."""

    cell_index: int
    shard_index: int
    attempt: int
    result: FuzzResult | None = None
    error: str | None = None
    error_traceback: str | None = None
    duration_seconds: float = 0.0
    worker_pid: int = 0
    #: Hermetic per-shard metrics (None unless the task asked).
    metrics: MetricsSnapshot | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


# ---- stats channel ----------------------------------------------------

@dataclass(frozen=True)
class WorkerFault:
    """One worker death, surfaced (not swallowed) on the stats channel."""

    cell_index: int
    shard_index: int
    attempt: int
    error: str
    traceback: str | None = None

    def describe(self) -> str:
        return (
            f"worker fault on cell {self.cell_index} shard "
            f"{self.shard_index} (attempt {self.attempt}): {self.error}"
        )


@dataclass
class ShardStats:
    """Per-shard progress record."""

    cell_index: int
    shard_index: int
    status: str = "pending"  # ok | retried | failed
    attempts: int = 0
    duration_seconds: float = 0.0
    mutations_run: int = 0
    worker_pid: int = 0
    error: str | None = None

    @property
    def mutations_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.mutations_run / self.duration_seconds


@dataclass
class CampaignStats:
    """The campaign's lightweight stats channel.

    Wall-clock numbers describe *this* run's worker pool; they are
    observability, not part of the deterministic merged result.
    """

    jobs: int = 1
    shards: list[ShardStats] = field(default_factory=list)
    faults: list[WorkerFault] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def total_mutations(self) -> int:
        return sum(s.mutations_run for s in self.shards)

    @property
    def mutations_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_mutations / self.wall_seconds

    @property
    def retried_shards(self) -> list[ShardStats]:
        return [s for s in self.shards if s.status == "retried"]

    @property
    def failed_shards(self) -> list[ShardStats]:
        return [s for s in self.shards if s.status == "failed"]

    @property
    def healthy(self) -> bool:
        """True when no worker died (not even a recovered one)."""
        return not self.faults

    def describe(self) -> str:
        return (
            f"{len(self.shards)} shards on {self.jobs} worker(s): "
            f"{self.total_mutations} mutations in "
            f"{self.wall_seconds:.2f}s "
            f"({self.mutations_per_second:.0f} mut/s), "
            f"{len(self.faults)} worker fault(s), "
            f"{len(self.retried_shards)} retried, "
            f"{len(self.failed_shards)} failed"
        )


# ---- campaign result --------------------------------------------------

@dataclass
class CampaignResult:
    """Merged outcome of a (possibly parallel) fuzzing campaign."""

    results: list[FuzzResult]
    stats: CampaignStats
    abandoned_cells: list[int] = field(default_factory=list)
    #: Deterministic merge of the per-shard metrics snapshots (shards
    #: of abandoned cells excluded, mirroring ``results``).  ``None``
    #: unless the campaign ran with ``collect_metrics=True``.
    metrics: MetricsSnapshot | None = None

    def merged_coverage(self) -> CoverageMap:
        """Union of every cell's newly discovered lines."""
        return CoverageMap.union_all(
            CoverageMap(result.new_lines) for result in self.results
        )

    def merged_corpus(self) -> Corpus:
        """Canonical union of every cell's corpus."""
        return Corpus.merge_all(
            result.corpus for result in self.results
        )

    def crash_tallies(self) -> dict[str, int]:
        return {
            "vm-crash": sum(r.vm_crashes for r in self.results),
            "hypervisor-crash": sum(
                r.hypervisor_crashes for r in self.results
            ),
        }

    def describe(self) -> str:
        tallies = self.crash_tallies()
        return (
            f"{len(self.results)} cells "
            f"({len(self.abandoned_cells)} abandoned), "
            f"{self.merged_coverage().loc} new LOC, "
            f"{tallies['vm-crash']} VM / "
            f"{tallies['hypervisor-crash']} HV crashes, "
            f"corpus of {len(self.merged_corpus())}"
        )


@dataclass
class WaveOutcome:
    """Merged outcome of one *wave* — a subset of the campaign's cells.

    The campaign controller's checkpoint unit: everything the
    persistent store needs to record the wave transactionally, and
    everything a resumed campaign needs to splice the wave back in.
    Cell results are keyed by cell index (never positional) so waves
    compose into a full campaign in any order.
    """

    #: Completed cells of this wave, keyed by cell index.
    results: dict[int, FuzzResult] = field(default_factory=dict)
    #: Cells of this wave abandoned after their retry.
    abandoned: list[int] = field(default_factory=list)
    #: Per-shard progress records, in task (plan) order.
    shard_stats: list[ShardStats] = field(default_factory=list)
    #: Worker deaths observed during the wave (recovered ones too).
    faults: list[WorkerFault] = field(default_factory=list)
    #: Deterministic merge of the wave's per-shard metrics snapshots
    #: (``None`` unless the campaign collects metrics).
    metrics: MetricsSnapshot | None = None


# ---- worker side ------------------------------------------------------

class InjectedWorkerFault(RuntimeError):
    """Raised by the fault-injection hook to simulate a worker death."""


def run_shard(
    task: ShardTask, trace: Trace, snapshot: VmSnapshot | None
) -> FuzzResult:
    """Run one shard hermetically: fresh manager, shard-derived RNG.

    This is the pure function the determinism contract is about — its
    output depends only on its arguments, never on which process (or
    how many siblings) it runs in.
    """
    from repro.core.manager import IrisManager

    manager = IrisManager(arch=task.arch, fast_reset=task.fast_reset)
    if snapshot is not None and snapshot.clock_tsc > manager.hv.clock.now:
        # Timer deadlines in the snapshot (vpt.next_due, vlapic) are
        # absolute TSC values on the recording host's clock.  A fresh
        # hypervisor starts at TSC 0, which would push every restored
        # deadline unreachably far into the future and silence the
        # interrupt-injection paths replay legitimately exercises.
        # Fast-forward into the snapshot's clock domain — a pure
        # function of the snapshot, so shards stay deterministic.
        manager.hv.clock.advance(snapshot.clock_tsc - manager.hv.clock.now)
    oracle = None
    if task.differential:
        from repro.fuzz.differential import DifferentialOracle

        oracle = DifferentialOracle()
    fuzzer = IrisFuzzer(
        manager, rng=random.Random(task.rng_seed),
        fast_reset=task.fast_reset, oracle=oracle,
    )
    case = FuzzTestCase(
        trace=trace,
        seed_index=task.seed_index,
        area=task.area,
        n_mutations=task.n_mutations,
        mutation_rule=task.mutation_rule,
        engine=task.engine,
    )
    return fuzzer.run_test_case(case, from_snapshot=snapshot)


def _execute_task(
    task: ShardTask, trace: Trace, snapshot: VmSnapshot | None
) -> ShardOutcome:
    """Run a task, converting any worker-side death into an outcome."""
    import os
    import traceback

    start = time.perf_counter()
    try:
        if task.fault_kind == "raise":
            raise InjectedWorkerFault(
                f"injected fault: cell {task.cell_index} shard "
                f"{task.shard_index} attempt {task.attempt}"
            )
        if task.fault_kind == "hang":
            time.sleep(3600)
        metrics_snapshot = None
        if task.collect_metrics:
            # Hermetic capture: a fresh wall-clock-free registry (and a
            # null tracer) scoped to this shard only, so the snapshot
            # is a pure function of the task and merges identically
            # for any ``jobs`` value.  Confined to this thread: when
            # the shard runs inside an in-process worker server, the
            # controller's own threads (transport counters, ambient
            # tracing) must neither leak into this snapshot nor lose
            # their events to it.
            from repro.obs import (
                NULL_TRACER,
                OBS,
                ThreadConfinedMetrics,
                ThreadConfinedTracer,
            )

            registry = MetricsRegistry(record_wall=False)
            with observability(
                tracer=ThreadConfinedTracer(NULL_TRACER, OBS.tracer),
                metrics=ThreadConfinedMetrics(registry, OBS.metrics),
            ):
                result = run_shard(task, trace, snapshot)
            metrics_snapshot = registry.snapshot()
        else:
            result = run_shard(task, trace, snapshot)
        return ShardOutcome(
            cell_index=task.cell_index,
            shard_index=task.shard_index,
            attempt=task.attempt,
            result=result,
            duration_seconds=time.perf_counter() - start,
            worker_pid=os.getpid(),
            metrics=metrics_snapshot,
        )
    except Exception as exc:
        return ShardOutcome(
            cell_index=task.cell_index,
            shard_index=task.shard_index,
            attempt=task.attempt,
            error=f"{type(exc).__name__}: {exc}",
            error_traceback=traceback.format_exc(),
            duration_seconds=time.perf_counter() - start,
            worker_pid=os.getpid(),
        )


# ---- the engine -------------------------------------------------------

class ParallelCampaign:
    """Shard Table-I cells across a worker pool and merge the results.

    ``jobs=1`` runs every shard inline (no pool) through the *same*
    hermetic per-shard path, so it produces bit-identical results to
    any ``jobs=N`` run — the property the differential tests pin.
    """

    def __init__(
        self,
        trace: Trace,
        snapshot: VmSnapshot | None,
        cases: list[FuzzTestCase],
        *,
        campaign_seed: int = 0,
        jobs: int = 1,
        shards_per_cell: int = 1,
        shard_timeout: float | None = None,
        start_method: str | None = None,
        on_event: Callable[[object], None] | None = None,
        fault_plan: Mapping[int, tuple[str, int]] | None = None,
        arch: str = "vmx",
        collect_metrics: bool = False,
        fast_reset: bool = True,
        differential: bool = False,
        transport: WorkerTransport | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if shards_per_cell < 1:
            raise ValueError("shards_per_cell must be >= 1")
        if differential and arch != "vmx":
            raise ValueError(
                "differential mode fuzzes the vmx backend natively and "
                "mirrors it on svm via the seed translation; "
                f"--arch {arch} has no secondary backend to diff against"
            )
        self.arch = arch
        self.differential = differential
        self.trace = trace
        self.snapshot = snapshot
        self.cases = list(cases)
        engines = {case.engine for case in self.cases}
        if len(engines) > 1:
            # One campaign, one engine: the config identity stores a
            # single engine name, so mixed plans are refused up front.
            raise ValueError(
                "cases mix mutation engines: "
                f"{', '.join(sorted(engines))}"
            )
        #: The campaign's mutation engine (part of its stored config
        #: identity; every shard task carries it).
        self.engine = engines.pop() if engines else "poc"
        self.campaign_seed = campaign_seed
        self.jobs = jobs
        self.shards_per_cell = shards_per_cell
        self.shard_timeout = shard_timeout
        self.start_method = start_method
        self.on_event = on_event
        #: cell_index -> (fault kind, number of attempts to sabotage);
        #: the chaos hook the fault-isolation tests drive.
        self.fault_plan = dict(fault_plan or {})
        self.collect_metrics = collect_metrics
        self.fast_reset = fast_reset
        #: Where shards run.  ``None`` means the default local warm
        #: pool, created lazily by the first wave; an explicit
        #: transport (e.g. ``SocketTransport``) moves execution off
        #: this host without changing any result byte.
        self._transport: WorkerTransport | None = transport

    # -- planning ------------------------------------------------------

    def plan(self) -> list[ShardTask]:
        """The deterministic shard list (before any retry bookkeeping)."""
        tasks: list[ShardTask] = []
        for cell_index, case in enumerate(self.cases):
            slices = split_mutations(
                case.n_mutations, self.shards_per_cell
            )
            for shard_index, n_mutations in enumerate(slices):
                tasks.append(ShardTask(
                    cell_index=cell_index,
                    shard_index=shard_index,
                    seed_index=case.seed_index,
                    area=case.area,
                    n_mutations=n_mutations,
                    mutation_rule=case.mutation_rule,
                    engine=case.engine,
                    rng_seed=derive_shard_seed(
                        self.campaign_seed, cell_index, shard_index
                    ),
                    fault_kind=self._fault_for(cell_index, attempt=0),
                    arch=self.arch,
                    collect_metrics=self.collect_metrics,
                    fast_reset=self.fast_reset,
                    differential=self.differential,
                ))
        return tasks

    def _fault_for(self, cell_index: int, attempt: int) -> str | None:
        kind, bad_attempts = self.fault_plan.get(
            cell_index, (None, 0)
        )
        return kind if attempt < bad_attempts else None

    # -- execution -----------------------------------------------------

    def run(self) -> CampaignResult:
        started = time.perf_counter()
        stats = CampaignStats(jobs=self.jobs)
        try:
            wave = self.run_wave(range(len(self.cases)))
        finally:
            self.close()
        stats.shards = wave.shard_stats
        stats.faults = wave.faults
        stats.wall_seconds = time.perf_counter() - started
        return CampaignResult(
            results=[
                wave.results[i] for i in sorted(wave.results)
            ],
            stats=stats,
            abandoned_cells=wave.abandoned,
            metrics=wave.metrics,
        )

    def run_wave(self, cell_indices: Sequence[int]) -> WaveOutcome:
        """Run one wave — a subset of the campaign's cells — and merge it.

        The campaign controller's scheduling unit.  Shard RNG seeds are
        derived from *campaign* coordinates (:meth:`plan` filtered by
        cell index), never from wave membership, so partitioning the
        same cells into different waves — or resuming a stored campaign
        mid-way — cannot change any shard's work.  The worker pool
        stays warm across calls; the caller owns teardown via
        :meth:`close` (:meth:`run` does this itself).
        """
        wanted = set(cell_indices)
        unknown = wanted.difference(range(len(self.cases)))
        if unknown:
            raise ValueError(
                f"unknown cell indices in wave: {sorted(unknown)}"
            )
        tasks = [t for t in self.plan() if t.cell_index in wanted]
        shard_stats = {
            (t.cell_index, t.shard_index): ShardStats(
                cell_index=t.cell_index, shard_index=t.shard_index
            )
            for t in tasks
        }
        faults: list[WorkerFault] = []
        shard_results: dict[tuple[int, int], FuzzResult] = {}
        shard_metrics: dict[tuple[int, int], MetricsSnapshot] = {}

        outcomes = self._run_tasks(tasks)
        retries = []
        for task, outcome in zip(tasks, outcomes):
            self._account(shard_stats, shard_results,
                          shard_metrics, faults, task, outcome)
            if not outcome.ok:
                retries.append(self._retry_task(task))

        if retries:
            # Same warm pool (unless a hang already forced its
            # replacement): shards are hermetic, so worker reuse
            # cannot leak the failed attempt into the retry.
            for task, outcome in zip(retries,
                                     self._run_tasks(retries)):
                self._account(shard_stats, shard_results,
                              shard_metrics, faults, task, outcome)

        results, abandoned = self._merge_cells(
            shard_results, sorted(wanted)
        )
        return WaveOutcome(
            results=results,
            abandoned=abandoned,
            shard_stats=[
                shard_stats[(t.cell_index, t.shard_index)]
                for t in tasks
            ],
            faults=faults,
            metrics=self._merge_metrics(shard_metrics, abandoned),
        )

    def close(self) -> None:
        """Release the transport's workers (idempotent).

        Callers driving the campaign wave-by-wave via :meth:`run_wave`
        must call this when done; :meth:`run` handles it internally.
        """
        if self._transport is not None:
            self._transport.close()

    def _retry_task(self, task: ShardTask) -> ShardTask:
        attempt = task.attempt + 1
        return ShardTask(
            cell_index=task.cell_index,
            shard_index=task.shard_index,
            seed_index=task.seed_index,
            area=task.area,
            n_mutations=task.n_mutations,
            mutation_rule=task.mutation_rule,
            engine=task.engine,
            rng_seed=task.rng_seed,
            attempt=attempt,
            fault_kind=self._fault_for(task.cell_index, attempt),
            arch=task.arch,
            collect_metrics=task.collect_metrics,
            fast_reset=task.fast_reset,
            differential=task.differential,
        )

    # -- transport plumbing -------------------------------------------

    def identity(self) -> tuple[tuple[str, str], ...]:
        """The campaign's deterministic coordinates, for worker logs.

        Shipped in the HELLO frame so an operator can tell whose wave
        a remote worker is serving; informational only — results never
        depend on it.
        """
        return (
            ("campaign_seed", str(self.campaign_seed)),
            ("cells", str(len(self.cases))),
            ("shards_per_cell", str(self.shards_per_cell)),
            ("arch", self.arch),
            ("fast_reset", str(self.fast_reset)),
            ("differential", str(self.differential)),
            ("engine", self.engine),
        )

    def transport(self) -> WorkerTransport:
        """The campaign's (primed) transport, default local pool."""
        from repro.campaign.transport import (
            LocalPoolTransport,
            TransportContext,
        )

        if self._transport is None:
            self._transport = LocalPoolTransport(
                jobs=self.jobs,
                start_method=self.start_method,
                shard_timeout=self.shard_timeout,
            )
        # Idempotent: the first prime wins, later calls are no-ops.
        self._transport.prime(TransportContext(
            trace=self.trace,
            snapshot=self.snapshot,
            identity=self.identity(),
        ))
        return self._transport

    def _run_tasks(
        self, tasks: list[ShardTask]
    ) -> list[ShardOutcome]:
        if not tasks:
            return []
        return self.transport().run_tasks(tasks)

    # The pool-lifecycle surface below predates the transport layer;
    # it remains as a thin view onto the default local transport (the
    # lifecycle tests pin its warm/teardown semantics through it).

    @property
    def _pool(self) -> multiprocessing.pool.Pool | None:
        from repro.campaign.transport import LocalPoolTransport

        if isinstance(self._transport, LocalPoolTransport):
            return self._transport._pool
        return None

    def _ensure_pool(self, n_tasks: int) -> multiprocessing.pool.Pool:
        from repro.campaign.transport import LocalPoolTransport

        transport = self.transport()
        if not isinstance(transport, LocalPoolTransport):
            raise TypeError(
                "campaign runs on "
                f"{transport.describe()}, which has no local pool"
            )
        return transport._ensure_pool(n_tasks)

    def _discard_pool(self) -> None:
        from repro.campaign.transport import LocalPoolTransport

        if isinstance(self._transport, LocalPoolTransport):
            self._transport._discard_pool()

    # -- bookkeeping / merging ----------------------------------------

    def _account(
        self,
        shard_stats: dict[tuple[int, int], ShardStats],
        shard_results: dict[tuple[int, int], FuzzResult],
        shard_metrics: dict[tuple[int, int], MetricsSnapshot],
        faults: list[WorkerFault],
        task: ShardTask,
        outcome: ShardOutcome,
    ) -> None:
        key = (task.cell_index, task.shard_index)
        record = shard_stats[key]
        record.attempts += 1
        record.duration_seconds += outcome.duration_seconds
        record.worker_pid = outcome.worker_pid
        if outcome.ok:
            assert outcome.result is not None
            record.mutations_run += outcome.result.mutations_run
            record.status = "retried" if task.attempt else "ok"
            record.error = None
            shard_results[key] = outcome.result
            if outcome.metrics is not None:
                shard_metrics[key] = outcome.metrics
            self._emit(("shard-completed", record))
        else:
            record.error = outcome.error
            fault = WorkerFault(
                cell_index=task.cell_index,
                shard_index=task.shard_index,
                attempt=task.attempt,
                error=outcome.error or "unknown",
                traceback=outcome.error_traceback,
            )
            faults.append(fault)
            if task.attempt == 0:
                self._emit(("worker-fault", fault))
            else:
                record.status = "failed"
                self._emit(("shard-abandoned", fault))

    def _emit(self, event: tuple[str, object]) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _merge_cells(
        self,
        shard_results: dict[tuple[int, int], FuzzResult],
        cell_indices: Sequence[int],
    ) -> tuple[dict[int, FuzzResult], list[int]]:
        results: dict[int, FuzzResult] = {}
        abandoned: list[int] = []
        for cell_index in cell_indices:
            case = self.cases[cell_index]
            n_shards = len(split_mutations(
                case.n_mutations, self.shards_per_cell
            ))
            cell_shards = [
                shard_results.get((cell_index, shard_index))
                for shard_index in range(n_shards)
            ]
            if any(r is None for r in cell_shards):
                abandoned.append(cell_index)
                continue
            results[cell_index] = reduce(FuzzResult.merge, cell_shards)
        return results, abandoned

    def _merge_metrics(
        self,
        shard_metrics: dict[tuple[int, int], MetricsSnapshot],
        abandoned: list[int],
    ) -> MetricsSnapshot | None:
        """Merge the per-shard snapshots in canonical key order.

        The merge is commutative/associative, so the ordering is only
        cosmetic — but excluding abandoned cells mirrors ``results``:
        the snapshot accounts exactly the work the merged result
        reflects, keeping totals identical for any ``jobs`` value.
        """
        if not self.collect_metrics:
            return None
        abandoned_cells = set(abandoned)
        return MetricsSnapshot.merge_all(
            shard_metrics[key]
            for key in sorted(shard_metrics)
            if key[0] not in abandoned_cells
        )


def run_parallel_campaign(
    trace: Trace,
    snapshot: VmSnapshot | None,
    cases: list[FuzzTestCase],
    **kwargs: object,
) -> CampaignResult:
    """Convenience wrapper: build a :class:`ParallelCampaign` and run it."""
    return ParallelCampaign(trace, snapshot, cases, **kwargs).run()
