"""Mutation rules over VM seeds.

The paper's PoC uses a single rule — "a single bit-flip in [the] VM seed
area: the fuzzer randomly selects a VMCS field or a general-purpose
register and then bit-flips the value" (§VII-2).  Byte-flip and
arithmetic rules are provided as the natural extensions the paper's
future-work section gestures at; Table I is generated with bit-flips
only.
"""

from __future__ import annotations

import enum
import random

from repro.core.seed import SeedEntry, SeedFlag, VMSeed
from repro.arch.fields import field_width


class MutationArea(enum.Enum):
    """Which seed area to corrupt (the paper's VMCS/GPR split)."""

    VMCS = "vmcs"
    GPR = "gpr"


def area_indices(seed: VMSeed, area: MutationArea) -> list[int]:
    """Entry indices belonging to the requested seed area, in order.

    Shared with the staged pipeline in
    :mod:`repro.fuzz.mutation_engine`, whose stages confine themselves
    to the case's area exactly like the flat rules here.
    """
    wanted = SeedFlag.GPR if area is MutationArea.GPR else \
        SeedFlag.VMCS_READ
    return [
        i for i, e in enumerate(seed.entries) if e.flag is wanted
    ]


def value_width(entry: SeedEntry) -> int:
    """Mutable bit width of an entry (64 for GPRs, field width else)."""
    if entry.flag is SeedFlag.GPR:
        return 64
    return field_width(int(entry.vmcs_field)).bits


# Pre-engine private names, kept as aliases.
_area_indices = area_indices
_value_width = value_width


def bit_flip(
    seed: VMSeed, area: MutationArea, rng: random.Random
) -> VMSeed:
    """The paper's rule: flip one random bit of one random entry."""
    indices = _area_indices(seed, area)
    if not indices:
        return seed
    index = rng.choice(indices)
    entry = seed.entries[index]
    bit = rng.randrange(_value_width(entry))
    mutated = SeedEntry(
        flag=entry.flag, encoding=entry.encoding,
        value=entry.value ^ (1 << bit),
    )
    return seed.replace_entry(index, mutated)


def byte_flip(
    seed: VMSeed, area: MutationArea, rng: random.Random
) -> VMSeed:
    """Extension rule: invert one random byte of one random entry."""
    indices = _area_indices(seed, area)
    if not indices:
        return seed
    index = rng.choice(indices)
    entry = seed.entries[index]
    byte = rng.randrange(max(_value_width(entry) // 8, 1))
    mutated = SeedEntry(
        flag=entry.flag, encoding=entry.encoding,
        value=entry.value ^ (0xFF << (8 * byte)),
    )
    return seed.replace_entry(index, mutated)


def arithmetic_mutation(
    seed: VMSeed, area: MutationArea, rng: random.Random
) -> VMSeed:
    """Extension rule: add a small signed delta to one entry."""
    indices = _area_indices(seed, area)
    if not indices:
        return seed
    index = rng.choice(indices)
    entry = seed.entries[index]
    delta = rng.choice((-8, -4, -2, -1, 1, 2, 4, 8, 16, 32))
    mask = (1 << _value_width(entry)) - 1
    mutated = SeedEntry(
        flag=entry.flag, encoding=entry.encoding,
        value=(entry.value + delta) & mask,
    )
    return seed.replace_entry(index, mutated)


#: Rule registry, keyed by the CLI vocabulary.
MUTATION_RULES = {
    "bit-flip": bit_flip,
    "byte-flip": byte_flip,
    "arithmetic": arithmetic_mutation,
}
