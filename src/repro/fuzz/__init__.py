"""IRIS-based fuzzer prototype (paper §VII).

The fuzzing loop: replay a recorded VM behavior up to a randomly chosen
seed to reach a valid VM state, then submit N single-bit-flip mutations
of that seed (in either the VMCS or the GPR seed area) through the IRIS
replay mechanism, measuring newly discovered hypervisor coverage and
classifying failures as VM crashes or hypervisor crashes.
"""

from repro.fuzz.mutations import (
    MutationArea,
    bit_flip,
    byte_flip,
    arithmetic_mutation,
    MUTATION_RULES,
)
from repro.fuzz.testcase import FuzzTestCase
from repro.fuzz.failures import (
    FailureKind,
    FailureRecord,
    classify_result,
)
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.differential import (
    MAX_DIVERGENCES_KEPT,
    DifferentialOracle,
    DivergenceKind,
    DivergenceRecord,
    DivergenceReport,
    divergence_identity,
    divergence_signature,
    iter_divergences,
    merge_divergences,
    render_divergence_report,
    triage_divergences,
)
from repro.fuzz.fuzzer import IrisFuzzer, FuzzResult
from repro.fuzz.coverage_guided import (
    CoverageGuidedFuzzer,
    GuidedCampaignReport,
)
from repro.fuzz.triage import (
    CrashBucket,
    TriageReport,
    crash_signature,
    triage,
)
from repro.fuzz.minimize import (
    EntryDelta,
    MinimizationResult,
    minimize_crash,
    seed_deltas,
)
from repro.fuzz.parallel import (
    CampaignResult,
    CampaignStats,
    ParallelCampaign,
    ShardStats,
    ShardTask,
    WorkerFault,
    derive_shard_seed,
    run_parallel_campaign,
    split_mutations,
)

__all__ = [
    "CampaignResult",
    "CampaignStats",
    "ParallelCampaign",
    "ShardStats",
    "ShardTask",
    "WorkerFault",
    "derive_shard_seed",
    "run_parallel_campaign",
    "split_mutations",
    "CoverageGuidedFuzzer",
    "GuidedCampaignReport",
    "CrashBucket",
    "TriageReport",
    "crash_signature",
    "triage",
    "EntryDelta",
    "MinimizationResult",
    "minimize_crash",
    "seed_deltas",
    "MutationArea",
    "bit_flip",
    "byte_flip",
    "arithmetic_mutation",
    "MUTATION_RULES",
    "FuzzTestCase",
    "FailureKind",
    "FailureRecord",
    "classify_result",
    "Corpus",
    "CorpusEntry",
    "IrisFuzzer",
    "FuzzResult",
    "MAX_DIVERGENCES_KEPT",
    "DifferentialOracle",
    "DivergenceKind",
    "DivergenceRecord",
    "DivergenceReport",
    "divergence_identity",
    "divergence_signature",
    "iter_divergences",
    "merge_divergences",
    "render_divergence_report",
    "triage_divergences",
]
