"""Worker transports: how shard tasks reach workers and results return.

The campaign engine (:class:`repro.fuzz.parallel.ParallelCampaign`)
plans deterministic :class:`ShardTask` lists and merges
:class:`ShardOutcome` lists — it no longer cares *where* the shards
run.  That question belongs to a :class:`WorkerTransport`:

* :class:`LocalPoolTransport` — the warm ``multiprocessing`` pool
  (behavior-preserving extraction of the engine's previous inline
  pool management, absolute wave deadlines and hang handling
  included);
* :class:`SocketTransport` — remote workers reached over the
  length-prefixed wire protocol (:mod:`repro.campaign.wire`), started
  with the ``iris-worker`` entrypoint
  (:mod:`repro.campaign.worker`).

Because every shard is hermetic — a pure function of its task plus the
(trace, snapshot) context — transports are interchangeable: the merged
campaign output is byte-identical across transports and worker counts,
the property the transport differential suite pins.

Failure semantics (socket transport)
------------------------------------

* **Per-wave deadline**: one absolute deadline covers the whole
  :meth:`~SocketTransport.run_tasks` call; shards unfinished at the
  deadline come back as timeout outcomes, exactly like the local
  pool's hung-shard path.
* **Heartbeats**: a worker streams HEARTBEAT frames while a shard
  runs, so a slow shard and a dead worker are distinguishable; a link
  silent past ``heartbeat_timeout`` is declared dead.
* **Reconnect with backoff**: a dropped link is retried up to
  ``reconnect_attempts`` times with exponential backoff before the
  worker is abandoned for the wave.
* **Exactly-once reassignment**: a shard in flight on a dead link is
  pushed back onto the wave's work queue and picked up by a live
  worker.  An outcome is recorded at most once per task — a result
  lost mid-frame is re-earned, never double-merged — and shards
  hermeticity makes the re-run bit-identical.

Liveness failures never corrupt results; at worst a shard surfaces as
an error outcome and the engine's retry/abandon machinery takes over.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.campaign import wire
from repro.core.seed import Trace
from repro.core.snapshot import VmSnapshot
from repro.errors import (
    TransportError,
    TransportProtocolError,
    WorkerUnavailableError,
)
from repro.fuzz.parallel import ShardOutcome, ShardTask, _execute_task
from repro.obs import OBS


# ---- shared plumbing --------------------------------------------------

@dataclass(frozen=True)
class TransportContext:
    """Everything a worker needs before its first task.

    Shipped exactly once per worker (pool initializer / HELLO frame):
    the recorded trace and snapshot every shard replays from, plus the
    campaign's identity — informational for the local pool, logged by
    remote workers so an operator can tell whose wave a worker serves.
    """

    trace: Trace
    snapshot: VmSnapshot | None
    identity: tuple[tuple[str, str], ...] = ()


@dataclass
class TransportStats:
    """Wall-clock-side transport accounting (observability, never part
    of the deterministic merged result)."""

    frames: int = 0
    bytes: int = 0
    retries: int = 0
    reassignments: int = 0

    def describe(self) -> str:
        return (
            f"{self.frames} frame(s), {self.bytes} byte(s), "
            f"{self.retries} reconnect(s), "
            f"{self.reassignments} reassignment(s)"
        )


class WorkerTransport(Protocol):
    """Where the engine's shards run.

    Implementations must return exactly one outcome per task, in task
    order, and may not invent or duplicate outcomes: the engine's
    retry accounting and the controller's checkpoint/merge algebra
    both assume the task->outcome mapping is a bijection.
    """

    stats: TransportStats

    def prime(self, context: TransportContext) -> None:
        """Install the campaign context (idempotent; first call wins)."""
        ...

    def run_tasks(
        self, tasks: Sequence[ShardTask]
    ) -> list[ShardOutcome]:
        """Execute tasks, one outcome each, in task order."""
        ...

    def close(self) -> None:
        """Release workers/connections (idempotent)."""
        ...

    def describe(self) -> str:
        """One-line human description for logs and stats."""
        ...


#: Per-worker campaign context, installed once by the pool initializer
#: so the (large) trace is pickled once per worker, not once per task.
_WORKER_CONTEXT: tuple[Trace, VmSnapshot | None] | None = None


def _worker_init(trace: Trace, snapshot: VmSnapshot | None) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (trace, snapshot)
    # A forked worker inherits the parent's process-wide observability
    # state — including a Tracer whose sink fd is shared with the
    # parent and every sibling.  Interleaved writes would corrupt the
    # trace and make it scheduling-dependent, so workers always start
    # from the null (disabled) state; per-shard metrics come back on
    # the stats channel instead (``ShardTask.collect_metrics``).
    from repro.obs import uninstall

    uninstall()


def _pool_run_shard(task: ShardTask) -> ShardOutcome:
    """Pool entry point: pull the per-worker context and execute."""
    assert _WORKER_CONTEXT is not None, "worker not initialized"
    trace, snapshot = _WORKER_CONTEXT
    return _execute_task(task, trace, snapshot)


# ---- the local pool ---------------------------------------------------

class LocalPoolTransport:
    """The warm in-process worker pool (the engine's classic path).

    ``jobs=1`` runs every task inline (no pool) through the same
    hermetic per-shard path.  For ``jobs>1`` one pool is created
    lazily and stays **warm** across waves and retries: the (large)
    trace and snapshot ship once per worker through the initializer.
    The pool is torn down (``terminate()``, never a blocking
    ``close()``) in exactly two cases: the transport is closed, or a
    shard overran its deadline — a hung worker cannot be reclaimed,
    and recreating the pool also guarantees a timed-out shard retries
    on a fresh worker.

    Each task's deadline is **absolute** — ``shard_timeout`` seconds
    from the moment the wave is submitted — rather than a per-``get``
    timeout that restarts whenever the previous result arrives, so a
    wave of N queued shards cannot grant its last shard N x
    ``shard_timeout`` of cumulative slack.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        start_method: str | None = None,
        shard_timeout: float | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.start_method = start_method
        self.shard_timeout = shard_timeout
        self.stats = TransportStats()
        self._context: TransportContext | None = None
        self._pool: multiprocessing.pool.Pool | None = None

    def prime(self, context: TransportContext) -> None:
        if self._context is None:
            self._context = context

    def describe(self) -> str:
        return f"local pool ({self.jobs} job(s))"

    def run_tasks(
        self, tasks: Sequence[ShardTask]
    ) -> list[ShardOutcome]:
        if not tasks:
            return []
        assert self._context is not None, "transport not primed"
        trace, snapshot = self._context.trace, self._context.snapshot
        if self.jobs == 1:
            return [
                _execute_task(task, trace, snapshot)
                for task in tasks
            ]
        pool = self._ensure_pool(len(tasks))
        pending = [
            (task, pool.apply_async(_pool_run_shard, (task,)))
            for task in tasks
        ]
        # Every task's deadline is absolute — measured from wave
        # submission, not from when the previous result happened to be
        # collected — so queue position no longer grants slack.
        deadline = (
            time.monotonic() + self.shard_timeout
            if self.shard_timeout is not None else None
        )
        outcomes: list[ShardOutcome] = []
        hung = False
        for task, handle in pending:
            try:
                if deadline is None:
                    outcomes.append(handle.get())
                else:
                    outcomes.append(handle.get(
                        max(deadline - time.monotonic(), 0.0)
                    ))
            except multiprocessing.TimeoutError:
                hung = True
                outcomes.append(ShardOutcome(
                    cell_index=task.cell_index,
                    shard_index=task.shard_index,
                    attempt=task.attempt,
                    error=(
                        "TimeoutError: shard exceeded "
                        f"{self.shard_timeout}s"
                    ),
                ))
        if hung:
            # A worker past its deadline cannot be reclaimed and is
            # still squatting on a pool slot; replacing the pool also
            # guarantees the timed-out shard retries on a fresh worker.
            self._discard_pool()
        return outcomes

    def close(self) -> None:
        self._discard_pool()

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self, n_tasks: int) -> multiprocessing.pool.Pool:
        """The warm pool, created on the first parallel wave."""
        if self._pool is None:
            assert self._context is not None, "transport not primed"
            context = multiprocessing.get_context(
                self._resolved_start_method()
            )
            self._pool = context.Pool(
                processes=min(self.jobs, n_tasks),
                initializer=_worker_init,
                initargs=(
                    self._context.trace, self._context.snapshot,
                ),
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Tear the pool down: transport close, or a shard hang.

        ``terminate()``, not ``close()``: a hung worker must not wedge
        the campaign during the join.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else methods[0]


# ---- the socket transport ---------------------------------------------

def parse_worker_address(spec: str) -> tuple[str, int]:
    """``host:port`` -> ``(host, port)``, loudly on anything else."""
    host, sep, port_text = spec.strip().rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address {spec!r} is not of the form host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"worker address {spec!r} has a non-numeric port"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(
            f"worker address {spec!r} has an out-of-range port"
        )
    return host, port


class _WaveDeadlineExceeded(Exception):
    """Internal: the wave's absolute deadline passed mid-await."""


class _WaveState:
    """Shared state of one wave: the work queue and its accounting.

    ``in_flight`` counts tasks popped but not yet resolved (outcome
    recorded or requeued).  An idle driver must **wait** while it is
    nonzero rather than exit on an empty queue: a sibling driver whose
    link just died is about to requeue its task, and a driver that
    already went home would strand it — the shard would surface as a
    spurious error outcome and the engine's retry would reorder the
    merged results.
    """

    __slots__ = ("tasks", "pending", "results", "in_flight",
                 "cond", "deadline")

    def __init__(
        self, tasks: Sequence[ShardTask], deadline: float | None
    ) -> None:
        self.tasks = tasks
        self.pending: deque[int] = deque(range(len(tasks)))
        self.results: dict[int, ShardOutcome] = {}
        self.in_flight = 0
        self.cond = threading.Condition()
        self.deadline = deadline


@dataclass
class _WorkerLink:
    """One controller->worker connection and its lifecycle state."""

    address: tuple[str, int]
    sock: socket.socket | None = None
    worker_pid: int = 0
    ever_connected: bool = False
    #: Dead for the current wave (reconnect budget exhausted); revived
    #: at the next wave so a restarted worker can rejoin.
    alive: bool = True

    @property
    def name(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


class SocketTransport:
    """Ship waves to socket-attached ``iris-worker`` processes.

    ``workers`` are ``host:port`` strings.  Connections are made
    lazily, primed once with the HELLO context, and stay warm across
    waves — the socket analogue of the local pool's initializer.

    See the module docstring for the failure semantics; ``sleep`` is
    injectable so the reconnect/backoff tests run in virtual time.
    """

    def __init__(
        self,
        workers: Sequence[str],
        *,
        wave_timeout: float | None = None,
        connect_timeout: float = 10.0,
        heartbeat_timeout: float = 30.0,
        reconnect_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker address")
        if reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be >= 0")
        self.wave_timeout = wave_timeout
        self.connect_timeout = connect_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.stats = TransportStats()
        self._sleep = sleep
        self._links = [
            _WorkerLink(address=parse_worker_address(spec))
            for spec in workers
        ]
        self._context: TransportContext | None = None
        self._lock = threading.Lock()
        self._closed = False

    def prime(self, context: TransportContext) -> None:
        if self._context is None:
            self._context = context

    def describe(self) -> str:
        names = ", ".join(link.name for link in self._links)
        return f"socket transport ({len(self._links)} worker(s): {names})"

    # -- the wave ------------------------------------------------------

    def run_tasks(
        self, tasks: Sequence[ShardTask]
    ) -> list[ShardOutcome]:
        if not tasks:
            return []
        if self._closed:
            raise TransportError("transport is closed")
        assert self._context is not None, "transport not primed"
        deadline = (
            time.monotonic() + self.wave_timeout
            if self.wave_timeout is not None else None
        )
        state = _WaveState(tasks, deadline)
        # A worker that exhausted its reconnect budget last wave gets
        # a fresh chance: the process may have been restarted since.
        for link in self._links:
            link.alive = True
        threads = [
            threading.Thread(
                target=self._drive,
                args=(link, state),
                name=f"iris-transport-{link.name}",
                daemon=True,
            )
            for link in self._links
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Anything still unfinished ran out of wave (deadline) or ran
        # out of workers; either way it surfaces as an error outcome
        # for the engine's retry/abandon machinery, never silently.
        timed_out = (
            deadline is not None and time.monotonic() >= deadline
        )
        outcomes: list[ShardOutcome] = []
        for index, task in enumerate(tasks):
            outcome = state.results.get(index)
            if outcome is None:
                outcome = self._missing_outcome(task, timed_out)
            outcomes.append(outcome)
        return outcomes

    def close(self) -> None:
        self._closed = True
        for link in self._links:
            sock = link.sock
            link.sock = None
            if sock is None:
                continue
            try:
                wire.send_frame(sock, wire.FrameKind.BYE, b"")
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # -- per-worker driver ---------------------------------------------

    def _drive(self, link: _WorkerLink, state: _WaveState) -> None:
        while True:
            index = self._claim(state)
            if index is None:
                return
            task = state.tasks[index]
            try:
                self._ensure_link(link, state.deadline)
            except TransportError:
                # This worker is gone for the wave; hand the shard
                # back for the surviving workers.
                self._requeue(state, index)
                link.alive = False
                return
            try:
                self._send(link, wire.FrameKind.TASK,
                           wire.encode_task(task))
                outcome = self._await_result(
                    link, task, state.deadline
                )
            except _WaveDeadlineExceeded:
                # The worker may still be mid-shard; drop the link so
                # its late result can never pair with a future task.
                self._drop_link(link)
                self._resolve(state, index, self._missing_outcome(
                    task, timed_out=True
                ))
                return
            except (TransportError, OSError) as exc:
                # The link died with the shard in flight.  No outcome
                # was recorded, so pushing the index back makes the
                # shard run (and merge) exactly once — on this worker
                # after a reconnect, or on a surviving sibling.
                self._drop_link(link)
                self._bump(reassignments=1)
                OBS.tracer.event(
                    "iris.transport.reassign",
                    worker=link.name,
                    cell=task.cell_index,
                    shard=task.shard_index,
                    error=f"{type(exc).__name__}: {exc}",
                )
                self._requeue(state, index)
                continue
            self._resolve(state, index, outcome)

    def _claim(self, state: _WaveState) -> int | None:
        """Pop the next task index, or ``None`` when the wave is over
        for this driver.

        Blocks while the queue is empty but siblings still hold tasks
        in flight — one of them may requeue (see :class:`_WaveState`).
        """
        with state.cond:
            while True:
                if (
                    state.deadline is not None
                    and time.monotonic() >= state.deadline
                ):
                    return None
                if state.pending:
                    state.in_flight += 1
                    return state.pending.popleft()
                if state.in_flight == 0:
                    return None
                state.cond.wait(timeout=0.05)

    def _requeue(self, state: _WaveState, index: int) -> None:
        with state.cond:
            state.pending.appendleft(index)
            state.in_flight -= 1
            state.cond.notify_all()

    def _resolve(
        self, state: _WaveState, index: int, outcome: ShardOutcome
    ) -> None:
        with state.cond:
            state.results[index] = outcome
            state.in_flight -= 1
            state.cond.notify_all()

    def _missing_outcome(
        self, task: ShardTask, timed_out: bool
    ) -> ShardOutcome:
        if timed_out:
            error = (
                "TimeoutError: wave exceeded its "
                f"{self.wave_timeout}s deadline"
            )
        else:
            error = (
                "WorkerUnavailableError: no live worker to run the "
                "shard (all reconnect budgets exhausted)"
            )
        return ShardOutcome(
            cell_index=task.cell_index,
            shard_index=task.shard_index,
            attempt=task.attempt,
            error=error,
        )

    # -- link lifecycle ------------------------------------------------

    def _ensure_link(
        self, link: _WorkerLink, deadline: float | None
    ) -> None:
        if link.sock is not None:
            return
        last: Exception | None = None
        for attempt in range(self.reconnect_attempts + 1):
            if attempt or link.ever_connected:
                # Any connect after the link's first-ever attempt is a
                # retry: backoff applies and the counter ticks.
                self._bump(retries=1)
            if attempt:
                self._sleep(min(
                    self.backoff_base * (2 ** (attempt - 1)),
                    self.backoff_cap,
                ))
            if deadline is not None and time.monotonic() >= deadline:
                break
            try:
                self._connect(link)
                return
            except (OSError, TransportError) as exc:
                last = exc
        raise WorkerUnavailableError(
            f"worker {link.name} unreachable after "
            f"{self.reconnect_attempts + 1} attempt(s): {last}"
        )

    def _connect(self, link: _WorkerLink) -> None:
        assert self._context is not None
        sock = socket.create_connection(
            link.address, timeout=self.connect_timeout
        )
        try:
            hello = wire.encode_hello(
                dict(self._context.identity),
                self._context.trace,
                self._context.snapshot,
            )
            self._bump(frames=1, bytes=wire.send_frame(
                sock, wire.FrameKind.HELLO, hello
            ))
            sock.settimeout(self.connect_timeout)
            reply = wire.recv_frame(sock)
            if reply is None:
                raise TransportProtocolError(
                    f"worker {link.name} closed the connection "
                    "during the handshake"
                )
            kind, payload, nbytes = reply
            self._bump(frames=1, bytes=nbytes)
            if kind is not wire.FrameKind.HELLO_ACK:
                raise TransportProtocolError(
                    f"worker {link.name} answered HELLO with "
                    f"{kind.name}"
                )
            link.worker_pid = wire.decode_hello_ack(payload)
        except BaseException:
            sock.close()
            raise
        link.sock = sock
        link.ever_connected = True
        OBS.tracer.event(
            "iris.transport.connect",
            worker=link.name, worker_pid=link.worker_pid,
        )

    def _drop_link(self, link: _WorkerLink) -> None:
        sock = link.sock
        link.sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- frame I/O -----------------------------------------------------

    def _send(
        self, link: _WorkerLink, kind: wire.FrameKind, payload: bytes
    ) -> None:
        assert link.sock is not None
        self._bump(
            frames=1, bytes=wire.send_frame(link.sock, kind, payload)
        )

    def _await_result(
        self,
        link: _WorkerLink,
        task: ShardTask,
        deadline: float | None,
    ) -> ShardOutcome:
        assert link.sock is not None
        while True:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise _WaveDeadlineExceeded()
            timeout = self.heartbeat_timeout
            if deadline is not None:
                timeout = min(timeout, deadline - now)
            link.sock.settimeout(timeout)
            try:
                frame = wire.recv_frame(link.sock)
            except TimeoutError:
                if (
                    deadline is not None
                    and time.monotonic() >= deadline
                ):
                    raise _WaveDeadlineExceeded() from None
                raise WorkerUnavailableError(
                    f"worker {link.name} sent no frame for "
                    f"{self.heartbeat_timeout}s (heartbeat missed)"
                ) from None
            if frame is None:
                raise TransportProtocolError(
                    f"worker {link.name} closed the connection "
                    "while a shard was in flight"
                )
            kind, payload, nbytes = frame
            self._bump(frames=1, bytes=nbytes)
            if kind is wire.FrameKind.HEARTBEAT:
                continue
            if kind is not wire.FrameKind.RESULT:
                raise TransportProtocolError(
                    f"worker {link.name} sent {kind.name} while a "
                    "RESULT was expected"
                )
            outcome = wire.decode_outcome(payload)
            expected = (
                task.cell_index, task.shard_index, task.attempt,
            )
            got = (
                outcome.cell_index, outcome.shard_index,
                outcome.attempt,
            )
            if got != expected:
                raise TransportProtocolError(
                    f"worker {link.name} answered for shard {got}, "
                    f"expected {expected}"
                )
            return outcome

    # -- accounting ----------------------------------------------------

    def _bump(
        self,
        *,
        frames: int = 0,
        bytes: int = 0,
        retries: int = 0,
        reassignments: int = 0,
    ) -> None:
        with self._lock:
            self.stats.frames += frames
            self.stats.bytes += bytes
            self.stats.retries += retries
            self.stats.reassignments += reassignments
        if frames:
            OBS.metrics.inc("transport_frames", value=frames)
        if bytes:
            OBS.metrics.inc("transport_bytes", value=bytes)
        if retries:
            OBS.metrics.inc("transport_retries", value=retries)
        if reassignments:
            OBS.metrics.inc(
                "transport_reassignments", value=reassignments
            )
