"""The worker-transport wire protocol: versioned, length-prefixed frames.

Everything that crosses a controller<->worker socket is a **frame**: a
fixed 12-byte header — magic bytes, wire version, frame kind, payload
length — followed by the payload.  The header is the whole
compatibility story: a peer speaking a different wire version (or not
speaking this protocol at all) is refused at the first frame with a
:class:`~repro.errors.TransportProtocolError`, before any payload is
interpreted.

Payload encodings mirror the codecs the rest of the tree already pins
property tests on:

* shard tasks and outcomes travel as canonical JSON envelopes whose
  seed-bearing rows (corpus entries, failure seeds) go through the
  batched seed codec (:func:`repro.core.seed.pack_entries`) — the same
  exact-round-trip layout the campaign store persists;
* metrics snapshots go through :meth:`MetricsSnapshot.to_json`;
* the one-time HELLO context (recorded trace + snapshot) is pickled —
  the controller and its workers are one trust domain, exactly as the
  local pool's ``multiprocessing`` channel already assumes.

Decoding is strict: truncation, bad magic, an oversized length, or an
undecodable payload all raise :class:`TransportProtocolError`; the
transport layer treats the link as dead and reassigns the in-flight
shard rather than guessing.
"""

from __future__ import annotations

import base64
import enum
import json
import pickle
import socket
import struct
from typing import Any, Mapping

from repro.core.seed import Trace, VMSeed, pack_entries, unpack_entries
from repro.core.snapshot import VmSnapshot
from repro.errors import TransportProtocolError
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.differential import DivergenceKind, DivergenceRecord
from repro.fuzz.failures import FailureKind, FailureRecord
from repro.fuzz.fuzzer import FuzzResult
from repro.fuzz.mutations import MutationArea
from repro.fuzz.parallel import ShardOutcome, ShardTask
from repro.obs import MetricsSnapshot
from repro.vmx.exit_reasons import ExitReason

#: Bump on any incompatible frame or payload change.  Carried in every
#: frame header; a mismatch is refused before the payload is touched.
#: v2: differential mode — tasks carry the ``differential`` flag,
#: results carry divergence records and comparison tallies.
#: v3: mutation engines — tasks carry the ``engine`` name, so a
#: remote worker runs the same staged pipeline (or the same PoC
#: stack) the controller planned.
WIRE_VERSION = 3

#: First bytes of every frame; a link that does not start with them is
#: not an iris worker link.
MAGIC = b"IRIS"

_HEADER = struct.Struct("!4sHHI")

#: Ceiling on a single frame's payload (guards against reading a
#: garbage length as a multi-gigabyte allocation).  Recorded traces of
#: a few hundred thousand exits fit comfortably.
MAX_PAYLOAD_BYTES = 1 << 30


class FrameKind(enum.IntEnum):
    """Every message the protocol speaks."""

    #: Controller -> worker, once per connection: campaign identity
    #: plus the pickled (trace, snapshot) execution context.
    HELLO = 1
    #: Worker -> controller: accepts the session (worker pid inside).
    HELLO_ACK = 2
    #: Controller -> worker: one :class:`ShardTask` to execute.
    TASK = 3
    #: Worker -> controller: the :class:`ShardOutcome` for the last
    #: TASK (result or captured worker-side error).
    RESULT = 4
    #: Worker -> controller while a task runs: liveness signal, so a
    #: slow shard is distinguishable from a dead worker.
    HEARTBEAT = 5
    #: Controller -> worker: clean goodbye, the session is over.
    BYE = 6


# ---- frame layer ------------------------------------------------------

def encode_frame(kind: FrameKind, payload: bytes) -> bytes:
    """One frame as bytes: header + payload."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise TransportProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte ceiling"
        )
    return _HEADER.pack(
        MAGIC, WIRE_VERSION, int(kind), len(payload)
    ) + payload


def send_frame(
    sock: socket.socket, kind: FrameKind, payload: bytes
) -> int:
    """Send one frame; returns the bytes put on the wire."""
    frame = encode_frame(kind, payload)
    sock.sendall(frame)
    return len(frame)


def _recv_exactly(
    sock: socket.socket, n: int, *, what: str
) -> bytes:
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            raise TransportProtocolError(
                f"connection closed mid-frame (while reading {what}: "
                f"{got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket,
) -> tuple[FrameKind, bytes, int] | None:
    """Read one frame; ``None`` on a clean close at a frame boundary.

    Returns ``(kind, payload, wire_bytes)``.  Anything anomalous — bad
    magic, wrong wire version, an unknown kind, a length beyond the
    ceiling, or EOF mid-frame — raises
    :class:`~repro.errors.TransportProtocolError`.
    """
    first = sock.recv(1)
    if not first:
        return None
    header = first + _recv_exactly(
        sock, _HEADER.size - 1, what="frame header"
    )
    magic, version, kind_value, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise TransportProtocolError(
            f"bad frame magic {magic!r}: peer is not speaking the "
            "iris worker protocol"
        )
    if version != WIRE_VERSION:
        raise TransportProtocolError(
            f"wire version {version} is not supported (this build "
            f"speaks version {WIRE_VERSION})"
        )
    try:
        kind = FrameKind(kind_value)
    except ValueError:
        raise TransportProtocolError(
            f"unknown frame kind {kind_value}"
        ) from None
    if length > MAX_PAYLOAD_BYTES:
        raise TransportProtocolError(
            f"frame length {length} exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte ceiling"
        )
    payload = _recv_exactly(sock, length, what=f"{kind.name} payload")
    return kind, payload, _HEADER.size + length


# ---- JSON helpers -----------------------------------------------------

def _dumps(payload: Mapping[str, Any]) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _loads(payload: bytes, *, what: str) -> dict[str, Any]:
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportProtocolError(
            f"undecodable {what} payload: {exc}"
        ) from exc
    if not isinstance(decoded, dict):
        raise TransportProtocolError(
            f"malformed {what} payload: expected an object, got "
            f"{type(decoded).__name__}"
        )
    return decoded


def _encode_seed(seed: VMSeed) -> dict[str, Any]:
    """A seed as (full exit reason, entry count, batched-codec blob).

    ``VMSeed.pack`` masks the reason to 16 bits, so the full integer
    rides beside the blob — the same faithfulness rule the campaign
    store follows.
    """
    return {
        "exit_reason": seed.exit_reason,
        "count": len(seed.entries),
        "entries": base64.b64encode(
            pack_entries(seed.entries)
        ).decode("ascii"),
    }


def _decode_seed(payload: dict[str, Any]) -> VMSeed:
    try:
        return VMSeed(
            exit_reason=payload["exit_reason"],
            entries=unpack_entries(
                base64.b64decode(payload["entries"]),
                payload["count"],
            ),
        )
    except TransportProtocolError:
        raise
    except Exception as exc:
        raise TransportProtocolError(
            f"undecodable seed in result payload: {exc}"
        ) from exc


# ---- task / outcome codecs -------------------------------------------

def encode_task(task: ShardTask) -> bytes:
    """A :class:`ShardTask` as a canonical JSON envelope."""
    return _dumps({
        "cell_index": task.cell_index,
        "shard_index": task.shard_index,
        "seed_index": task.seed_index,
        "area": task.area.value,
        "n_mutations": task.n_mutations,
        "mutation_rule": task.mutation_rule,
        "engine": task.engine,
        "rng_seed": task.rng_seed,
        "attempt": task.attempt,
        "arch": task.arch,
        "fault_kind": task.fault_kind,
        "collect_metrics": task.collect_metrics,
        "fast_reset": task.fast_reset,
        "differential": task.differential,
    })


def decode_task(payload: bytes) -> ShardTask:
    data = _loads(payload, what="task")
    try:
        return ShardTask(
            cell_index=data["cell_index"],
            shard_index=data["shard_index"],
            seed_index=data["seed_index"],
            area=MutationArea(data["area"]),
            n_mutations=data["n_mutations"],
            mutation_rule=data["mutation_rule"],
            engine=data["engine"],
            rng_seed=data["rng_seed"],
            attempt=data["attempt"],
            arch=data["arch"],
            fault_kind=data["fault_kind"],
            collect_metrics=data["collect_metrics"],
            fast_reset=data["fast_reset"],
            differential=data["differential"],
        )
    except (KeyError, ValueError) as exc:
        raise TransportProtocolError(
            f"malformed task payload: {exc!r}"
        ) from exc


def _encode_result(result: FuzzResult) -> dict[str, Any]:
    return {
        "workload": result.workload,
        "exit_reason": int(result.exit_reason.value),
        "area": result.area.value,
        "mutations_run": result.mutations_run,
        "baseline_loc": result.baseline_loc,
        "new_loc": result.new_loc,
        "vm_crashes": result.vm_crashes,
        "hypervisor_crashes": result.hypervisor_crashes,
        "new_lines": sorted(
            [file, line] for file, line in result.new_lines
        ),
        "corpus": [
            {
                "reason_kept": entry.reason_kept,
                "new_loc": entry.new_loc,
                "fingerprint": entry.coverage_fingerprint,
                "seed": _encode_seed(entry.seed),
            }
            for entry in result.corpus.entries
        ],
        "failures": [
            {
                "kind": record.kind.value,
                "cause": record.cause,
                "crash_reason": record.crash_reason,
                "mutation_index": record.mutation_index,
                "seed": _encode_seed(record.seed),
                "log_tail": list(record.log_tail),
            }
            for record in result.failures
        ],
        "seeds_compared": result.seeds_compared,
        "untranslatable_seeds": result.untranslatable_seeds,
        "divergences": [
            {
                "kind": record.kind.value,
                "mutation_index": record.mutation_index,
                "vmx_outcome": record.vmx_outcome,
                "svm_outcome": record.svm_outcome,
                "detail": record.detail,
                "seed": _encode_seed(record.seed),
            }
            for record in result.divergences
        ],
    }


def _decode_result(data: dict[str, Any]) -> FuzzResult:
    return FuzzResult(
        workload=data["workload"],
        exit_reason=ExitReason(data["exit_reason"]),
        area=MutationArea(data["area"]),
        mutations_run=data["mutations_run"],
        baseline_loc=data["baseline_loc"],
        new_loc=data["new_loc"],
        vm_crashes=data["vm_crashes"],
        hypervisor_crashes=data["hypervisor_crashes"],
        new_lines=frozenset(
            (file, line) for file, line in data["new_lines"]
        ),
        corpus=Corpus.from_entries(
            CorpusEntry(
                seed=_decode_seed(entry["seed"]),
                reason_kept=entry["reason_kept"],
                new_loc=entry["new_loc"],
                coverage_fingerprint=entry["fingerprint"],
            )
            for entry in data["corpus"]
        ),
        failures=[
            FailureRecord(
                kind=FailureKind(record["kind"]),
                cause=record["cause"],
                crash_reason=record["crash_reason"],
                mutation_index=record["mutation_index"],
                seed=_decode_seed(record["seed"]),
                log_tail=tuple(record["log_tail"]),
            )
            for record in data["failures"]
        ],
        seeds_compared=data["seeds_compared"],
        untranslatable_seeds=data["untranslatable_seeds"],
        divergences=tuple(
            DivergenceRecord(
                kind=DivergenceKind(record["kind"]),
                mutation_index=record["mutation_index"],
                vmx_outcome=record["vmx_outcome"],
                svm_outcome=record["svm_outcome"],
                detail=record["detail"],
                seed=_decode_seed(record["seed"]),
            )
            for record in data["divergences"]
        ),
    )


def encode_outcome(outcome: ShardOutcome) -> bytes:
    """A :class:`ShardOutcome` (result *or* captured fault) as bytes."""
    return _dumps({
        "cell_index": outcome.cell_index,
        "shard_index": outcome.shard_index,
        "attempt": outcome.attempt,
        "result": (
            None if outcome.result is None
            else _encode_result(outcome.result)
        ),
        "error": outcome.error,
        "error_traceback": outcome.error_traceback,
        "duration_seconds": outcome.duration_seconds,
        "worker_pid": outcome.worker_pid,
        "metrics": (
            None if outcome.metrics is None
            else outcome.metrics.to_json()
        ),
    })


def decode_outcome(payload: bytes) -> ShardOutcome:
    data = _loads(payload, what="result")
    try:
        return ShardOutcome(
            cell_index=data["cell_index"],
            shard_index=data["shard_index"],
            attempt=data["attempt"],
            result=(
                None if data["result"] is None
                else _decode_result(data["result"])
            ),
            error=data["error"],
            error_traceback=data["error_traceback"],
            duration_seconds=data["duration_seconds"],
            worker_pid=data["worker_pid"],
            metrics=(
                None if data["metrics"] is None
                else MetricsSnapshot.from_json(data["metrics"])
            ),
        )
    except TransportProtocolError:
        raise
    except Exception as exc:
        raise TransportProtocolError(
            f"malformed result payload: {exc!r}"
        ) from exc


# ---- session handshake ------------------------------------------------

def encode_hello(
    identity: Mapping[str, str],
    trace: Trace,
    snapshot: VmSnapshot | None,
) -> bytes:
    """The once-per-connection context: identity JSON + pickled state.

    The trace and snapshot are arbitrary object graphs; they travel by
    pickle, exactly as the local pool already ships them through its
    ``multiprocessing`` initializer — same objects, same trust domain.
    """
    ident = _dumps({str(k): str(v) for k, v in identity.items()})
    context = pickle.dumps(
        (trace, snapshot), protocol=pickle.HIGHEST_PROTOCOL
    )
    return struct.pack("!I", len(ident)) + ident + context


def decode_hello(
    payload: bytes,
) -> tuple[dict[str, str], Trace, VmSnapshot | None]:
    if len(payload) < 4:
        raise TransportProtocolError("truncated HELLO payload")
    (ident_len,) = struct.unpack_from("!I", payload)
    if len(payload) < 4 + ident_len:
        raise TransportProtocolError("truncated HELLO identity")
    identity = _loads(
        payload[4:4 + ident_len], what="HELLO identity"
    )
    try:
        trace, snapshot = pickle.loads(payload[4 + ident_len:])
    except Exception as exc:
        raise TransportProtocolError(
            f"undecodable HELLO context: {exc!r}"
        ) from exc
    return (
        {str(k): str(v) for k, v in identity.items()},
        trace,
        snapshot,
    )


def encode_hello_ack(worker_pid: int) -> bytes:
    return _dumps({
        "worker_pid": worker_pid, "wire_version": WIRE_VERSION,
    })


def decode_hello_ack(payload: bytes) -> int:
    data = _loads(payload, what="HELLO_ACK")
    try:
        return int(data["worker_pid"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportProtocolError(
            f"malformed HELLO_ACK payload: {exc!r}"
        ) from exc
