"""SQLite-backed persistent campaign store.

The control plane's durability layer: everything a long-running
campaign accumulates — per-cell fuzz results, the retained-mutant
corpus, the cumulative coverage frontier, deduplicated crash buckets,
per-wave metrics — is written to one SQLite file in a **single
transaction per wave** (:meth:`CampaignStore.checkpoint_wave`).  A
process death between checkpoints therefore loses at most the wave in
flight; SQLite's journal guarantees a torn write rolls back to the
previous wave boundary instead of leaving partial state.

Serialization choices mirror the codecs the rest of the tree already
pins property tests on:

* seeds go through :func:`repro.core.seed.pack_entries` (the batched
  10-byte-entry codec), with the **full** ``exit_reason`` integer in
  its own column — ``VMSeed.pack()`` masks the reason to 16 bits, so
  round-tripping through ``pack()`` alone would not be faithful;
* coverage sets go through :meth:`CoverageMap.to_json` (the canonical
  bitmap JSON form);
* metrics go through :meth:`MetricsSnapshot.to_json`.

Anything doubtful about a store raises a typed
:class:`repro.errors.CampaignStoreError` subclass — resume never
guesses (see :meth:`validate`).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Iterator, Sequence

from repro.errors import (
    CorruptStoreError,
    StoreMismatchError,
    StoreSchemaError,
)
from repro.core.seed import VMSeed, pack_entries, unpack_entries
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.differential import (
    DivergenceKind,
    DivergenceRecord,
    divergence_signature,
)
from repro.fuzz.failures import FailureKind, FailureRecord
from repro.fuzz.fuzzer import FuzzResult
from repro.fuzz.mutations import MutationArea
from repro.fuzz.parallel import WaveOutcome
from repro.fuzz.triage import crash_signature
from repro.hypervisor.coverage import CoverageMap
from repro.obs import MetricsSnapshot
from repro.vmx.exit_reasons import ExitReason, reason_name

#: Bump on any incompatible schema change.  A store written by a
#: different version refuses to load with a :class:`StoreSchemaError`
#: whose message is pinned by the campaign test suite.
#: v2: differential mode — cells carry comparison tallies, divergence
#: records persist in their own table with recomputable signatures.
SCHEMA_VERSION = 2

_TABLES = (
    "meta", "waves", "cells", "corpus_entries", "failures",
    "coverage_frontier", "crash_buckets", "divergences",
)

_SCHEMA = """
CREATE TABLE meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE waves (
    wave_index INTEGER PRIMARY KEY,
    cell_indices TEXT NOT NULL,
    abandoned TEXT NOT NULL,
    metrics TEXT
);
CREATE TABLE cells (
    cell_index INTEGER PRIMARY KEY,
    wave_index INTEGER NOT NULL,
    workload TEXT NOT NULL,
    exit_reason INTEGER NOT NULL,
    area TEXT NOT NULL,
    mutations_run INTEGER NOT NULL,
    baseline_loc INTEGER NOT NULL,
    new_loc INTEGER NOT NULL,
    vm_crashes INTEGER NOT NULL,
    hypervisor_crashes INTEGER NOT NULL,
    new_lines TEXT NOT NULL,
    seeds_compared INTEGER NOT NULL DEFAULT 0,
    untranslatable_seeds INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE corpus_entries (
    cell_index INTEGER NOT NULL,
    position INTEGER NOT NULL,
    reason_kept TEXT NOT NULL,
    new_loc INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    exit_reason INTEGER NOT NULL,
    entry_count INTEGER NOT NULL,
    entries BLOB NOT NULL,
    PRIMARY KEY (cell_index, position)
);
CREATE TABLE failures (
    cell_index INTEGER NOT NULL,
    position INTEGER NOT NULL,
    kind TEXT NOT NULL,
    cause TEXT NOT NULL,
    crash_reason TEXT NOT NULL,
    mutation_index INTEGER NOT NULL,
    exit_reason INTEGER NOT NULL,
    entry_count INTEGER NOT NULL,
    entries BLOB NOT NULL,
    log_tail TEXT NOT NULL,
    signature TEXT NOT NULL,
    PRIMARY KEY (cell_index, position)
);
CREATE TABLE coverage_frontier (
    wave_index INTEGER PRIMARY KEY,
    coverage TEXT NOT NULL
);
CREATE TABLE crash_buckets (
    signature TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    cause TEXT NOT NULL,
    count INTEGER NOT NULL,
    seed_reasons TEXT NOT NULL
);
CREATE TABLE divergences (
    cell_index INTEGER NOT NULL,
    position INTEGER NOT NULL,
    kind TEXT NOT NULL,
    mutation_index INTEGER NOT NULL,
    vmx_outcome TEXT NOT NULL,
    svm_outcome TEXT NOT NULL,
    detail TEXT NOT NULL,
    exit_reason INTEGER NOT NULL,
    entry_count INTEGER NOT NULL,
    entries BLOB NOT NULL,
    signature TEXT NOT NULL,
    PRIMARY KEY (cell_index, position)
);
"""


# ---- campaign identity ------------------------------------------------

@dataclass(frozen=True)
class CampaignConfig:
    """The deterministic identity of a campaign.

    Everything the merged result is a pure function of (the determinism
    contract in :mod:`repro.fuzz.parallel`), plus the wave plan —
    resume maps "last completed wave" back to cell sets, so the
    partition must not drift between runs.  ``jobs`` is deliberately
    absent: worker count never changes results, so a campaign may be
    resumed with a different ``--jobs`` value.

    ``extra`` carries opaque caller parameters (the CLI stores its
    recording knobs there so ``--resume`` can re-record the identical
    trace) as a sorted key/value tuple; it participates in identity.
    """

    campaign_seed: int
    n_cells: int
    shards_per_cell: int = 1
    wave_size: int = 1
    arch: str = "vmx"
    fast_reset: bool = True
    collect_metrics: bool = False
    differential: bool = False
    #: Mutation engine the campaign's cases run ("poc"/"smart").
    #: First-class (not ``extra``) so resume restores it and mismatch
    #: errors name it; defaults keep pre-engine stores loadable.
    engine: str = "poc"
    extra: tuple[tuple[str, str], ...] = ()

    def to_json(self) -> str:
        payload: dict[str, Any] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        payload["extra"] = dict(self.extra)
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "CampaignConfig":
        payload = json.loads(text)
        extra = tuple(sorted(
            (str(k), str(v))
            for k, v in payload.pop("extra", {}).items()
        ))
        return cls(extra=extra, **payload)

    def describe_diff(self, other: "CampaignConfig") -> str:
        """Human-readable field-by-field diff (for mismatch errors)."""
        diffs = []
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if mine != theirs:
                diffs.append(f"{f.name}: stored={mine!r} requested={theirs!r}")
        return "; ".join(diffs) or "identical"


@dataclass(frozen=True)
class StoredWave:
    """One completed wave as reloaded from the store."""

    wave_index: int
    cell_indices: tuple[int, ...]
    abandoned: tuple[int, ...]
    metrics: MetricsSnapshot | None


# ---- the store --------------------------------------------------------

class CampaignStore:
    """Transactional persistence for a resumable campaign.

    Use as a context manager or call :meth:`close` explicitly.  A path
    of ``":memory:"`` keeps the store in RAM (the property tests use
    this for speed); any other path is a SQLite file on disk.

    The ``fault_hook`` attribute, when set, is invoked with a named
    checkpoint-internal position (``"wave-row"``, ``"cell-rows"``,
    ``"frontier"``, ``"before-commit"``) from *inside* the wave
    transaction — the torn-checkpoint tests raise from it to prove a
    mid-write death rolls back cleanly.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.fault_hook: Callable[[str], None] | None = None
        try:
            self._conn = sqlite3.connect(path)
        except sqlite3.Error as exc:  # pragma: no cover - defensive
            raise CorruptStoreError(
                f"cannot open campaign store {path!r}: {exc}"
            ) from exc

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _hook(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def _query(self, sql: str, params: Sequence[Any] = ()) -> list[Any]:
        """Run a read-only query, mapping SQLite damage to our error."""
        try:
            return list(self._conn.execute(sql, params))
        except sqlite3.DatabaseError as exc:
            raise CorruptStoreError(
                f"campaign store {self.path!r} is unreadable: {exc}"
            ) from exc

    # -- identity ------------------------------------------------------

    @property
    def initialized(self) -> bool:
        """Whether the store already holds a campaign.

        Raises :class:`StoreSchemaError` when it holds one written by
        an incompatible schema version, and :class:`CorruptStoreError`
        when the file is not a readable SQLite database.
        """
        rows = self._query(
            "SELECT name FROM sqlite_master "
            "WHERE type='table' AND name='meta'"
        )
        if not rows:
            return False
        self._check_schema_version()
        return True

    def _check_schema_version(self) -> None:
        rows = self._query(
            "SELECT value FROM meta WHERE key='schema_version'"
        )
        if not rows:
            raise CorruptStoreError(
                f"campaign store {self.path!r} has no schema version"
            )
        found = int(rows[0][0])
        if found != SCHEMA_VERSION:
            raise StoreSchemaError(
                f"campaign store schema version {found} is not "
                f"supported (expected {SCHEMA_VERSION})"
            )

    def initialize(self, config: CampaignConfig) -> None:
        """Create the schema and record the campaign's identity."""
        if self.initialized:
            raise StoreMismatchError(
                f"campaign store {self.path!r} already holds a "
                "campaign; resume it or use a fresh store"
            )
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [
                    ("schema_version", str(SCHEMA_VERSION)),
                    ("config", config.to_json()),
                ],
            )

    def config(self) -> CampaignConfig:
        self._check_schema_version()
        rows = self._query(
            "SELECT value FROM meta WHERE key='config'"
        )
        if not rows:
            raise CorruptStoreError(
                f"campaign store {self.path!r} has no campaign config"
            )
        return CampaignConfig.from_json(rows[0][0])

    # -- checkpointing -------------------------------------------------

    def checkpoint_wave(
        self,
        wave_index: int,
        cell_indices: Sequence[int],
        wave: WaveOutcome,
    ) -> None:
        """Persist one completed wave in a single transaction.

        Either the whole wave — cell results, corpus rows, failure
        rows, the advanced coverage frontier, crash-bucket tallies, and
        the wave row itself — commits, or none of it does.
        """
        last = self.last_completed_wave()
        expected = 0 if last is None else last + 1
        if wave_index != expected:
            raise StoreMismatchError(
                f"checkpoint for wave {wave_index} but store expects "
                f"wave {expected}"
            )
        frontier = self.coverage_frontier().union(CoverageMap.union_all(
            CoverageMap(result.new_lines)
            for result in wave.results.values()
        ))
        try:
            with self._conn:
                self._conn.execute(
                    "INSERT INTO waves (wave_index, cell_indices, "
                    "abandoned, metrics) VALUES (?, ?, ?, ?)",
                    (
                        wave_index,
                        json.dumps(sorted(cell_indices)),
                        json.dumps(sorted(wave.abandoned)),
                        None if wave.metrics is None
                        else wave.metrics.to_json(),
                    ),
                )
                self._hook("wave-row")
                for cell_index in sorted(wave.results):
                    self._insert_cell(
                        wave_index, cell_index,
                        wave.results[cell_index],
                    )
                self._hook("cell-rows")
                self._conn.execute(
                    "INSERT INTO coverage_frontier "
                    "(wave_index, coverage) VALUES (?, ?)",
                    (wave_index, frontier.to_json()),
                )
                self._hook("frontier")
                self._update_crash_buckets(wave)
                self._hook("before-commit")
        except sqlite3.DatabaseError as exc:
            raise CorruptStoreError(
                f"checkpoint of wave {wave_index} failed: {exc}"
            ) from exc

    def _insert_cell(
        self, wave_index: int, cell_index: int, result: FuzzResult
    ) -> None:
        self._conn.execute(
            "INSERT INTO cells (cell_index, wave_index, workload, "
            "exit_reason, area, mutations_run, baseline_loc, new_loc, "
            "vm_crashes, hypervisor_crashes, new_lines, "
            "seeds_compared, untranslatable_seeds) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                cell_index,
                wave_index,
                result.workload,
                int(result.exit_reason.value),
                result.area.value,
                result.mutations_run,
                result.baseline_loc,
                result.new_loc,
                result.vm_crashes,
                result.hypervisor_crashes,
                CoverageMap(result.new_lines).to_json(),
                result.seeds_compared,
                result.untranslatable_seeds,
            ),
        )
        self._conn.executemany(
            "INSERT INTO corpus_entries (cell_index, position, "
            "reason_kept, new_loc, fingerprint, exit_reason, "
            "entry_count, entries) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    cell_index, position, entry.reason_kept,
                    entry.new_loc, entry.coverage_fingerprint,
                    entry.seed.exit_reason, len(entry.seed.entries),
                    pack_entries(entry.seed.entries),
                )
                for position, entry in enumerate(result.corpus.entries)
            ],
        )
        self._conn.executemany(
            "INSERT INTO failures (cell_index, position, kind, cause, "
            "crash_reason, mutation_index, exit_reason, entry_count, "
            "entries, log_tail, signature) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    cell_index, position, record.kind.value,
                    record.cause, record.crash_reason,
                    record.mutation_index, record.seed.exit_reason,
                    len(record.seed.entries),
                    pack_entries(record.seed.entries),
                    json.dumps(list(record.log_tail)),
                    crash_signature(record),
                )
                for position, record in enumerate(result.failures)
            ],
        )
        self._conn.executemany(
            "INSERT INTO divergences (cell_index, position, kind, "
            "mutation_index, vmx_outcome, svm_outcome, detail, "
            "exit_reason, entry_count, entries, signature) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    cell_index, position, record.kind.value,
                    record.mutation_index, record.vmx_outcome,
                    record.svm_outcome, record.detail,
                    record.seed.exit_reason,
                    len(record.seed.entries),
                    pack_entries(record.seed.entries),
                    divergence_signature(record),
                )
                for position, record in enumerate(result.divergences)
            ],
        )

    def _update_crash_buckets(self, wave: WaveOutcome) -> None:
        for result in wave.results.values():
            for record in result.failures:
                signature = crash_signature(record)
                rows = list(self._conn.execute(
                    "SELECT count, seed_reasons FROM crash_buckets "
                    "WHERE signature=?", (signature,),
                ))
                reasons = {reason_name(record.seed.exit_reason)}
                count = 1
                if rows:
                    count += rows[0][0]
                    reasons.update(json.loads(rows[0][1]))
                self._conn.execute(
                    "INSERT OR REPLACE INTO crash_buckets "
                    "(signature, kind, cause, count, seed_reasons) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        signature, record.kind.value, record.cause,
                        count, json.dumps(sorted(reasons)),
                    ),
                )

    # -- reloading -----------------------------------------------------

    def last_completed_wave(self) -> int | None:
        rows = self._query("SELECT MAX(wave_index) FROM waves")
        return rows[0][0] if rows and rows[0][0] is not None else None

    def completed_waves(self) -> list[StoredWave]:
        """Every committed wave, in wave order."""
        return [
            StoredWave(
                wave_index=row[0],
                cell_indices=tuple(json.loads(row[1])),
                abandoned=tuple(json.loads(row[2])),
                metrics=(
                    None if row[3] is None
                    else MetricsSnapshot.from_json(row[3])
                ),
            )
            for row in self._query(
                "SELECT wave_index, cell_indices, abandoned, metrics "
                "FROM waves ORDER BY wave_index"
            )
        ]

    def load_results(self) -> dict[int, FuzzResult]:
        """Reconstruct every stored cell result, keyed by cell index.

        The reconstruction is exact: enum round-trips, the corpus
        rebuilt in stored (discovery) order with its fingerprint index
        reconstituted, failure seeds rebuilt from the batched codec
        plus the unmasked exit-reason column.
        """
        corpus_rows: dict[int, list[CorpusEntry]] = {}
        for row in self._query(
            "SELECT cell_index, reason_kept, new_loc, fingerprint, "
            "exit_reason, entry_count, entries FROM corpus_entries "
            "ORDER BY cell_index, position"
        ):
            corpus_rows.setdefault(row[0], []).append(CorpusEntry(
                seed=self._decode_seed(row[4], row[6], row[5]),
                reason_kept=row[1],
                new_loc=row[2],
                coverage_fingerprint=row[3],
            ))
        failure_rows: dict[int, list[FailureRecord]] = {}
        for row in self._query(
            "SELECT cell_index, kind, cause, crash_reason, "
            "mutation_index, exit_reason, entry_count, entries, "
            "log_tail FROM failures ORDER BY cell_index, position"
        ):
            failure_rows.setdefault(row[0], []).append(FailureRecord(
                kind=FailureKind(row[1]),
                cause=row[2],
                crash_reason=row[3],
                mutation_index=row[4],
                seed=self._decode_seed(row[5], row[7], row[6]),
                log_tail=tuple(json.loads(row[8])),
            ))
        divergence_rows: dict[int, list[DivergenceRecord]] = {}
        for row in self._query(
            "SELECT cell_index, kind, mutation_index, vmx_outcome, "
            "svm_outcome, detail, exit_reason, entry_count, entries "
            "FROM divergences ORDER BY cell_index, position"
        ):
            divergence_rows.setdefault(row[0], []).append(
                DivergenceRecord(
                    kind=DivergenceKind(row[1]),
                    mutation_index=row[2],
                    vmx_outcome=row[3],
                    svm_outcome=row[4],
                    detail=row[5],
                    seed=self._decode_seed(row[6], row[8], row[7]),
                )
            )
        results: dict[int, FuzzResult] = {}
        for row in self._query(
            "SELECT cell_index, workload, exit_reason, area, "
            "mutations_run, baseline_loc, new_loc, vm_crashes, "
            "hypervisor_crashes, new_lines, seeds_compared, "
            "untranslatable_seeds FROM cells "
            "ORDER BY cell_index"
        ):
            cell_index = row[0]
            results[cell_index] = FuzzResult(
                workload=row[1],
                exit_reason=ExitReason(row[2]),
                area=MutationArea(row[3]),
                mutations_run=row[4],
                baseline_loc=row[5],
                new_loc=row[6],
                vm_crashes=row[7],
                hypervisor_crashes=row[8],
                failures=failure_rows.get(cell_index, []),
                corpus=Corpus.from_entries(
                    corpus_rows.get(cell_index, [])
                ),
                new_lines=self._decode_coverage(row[9]).lines(),
                divergences=tuple(
                    divergence_rows.get(cell_index, [])
                ),
                seeds_compared=row[10],
                untranslatable_seeds=row[11],
            )
        return results

    def _decode_seed(
        self, exit_reason: int, blob: bytes, count: int
    ) -> VMSeed:
        try:
            return VMSeed(
                exit_reason=exit_reason,
                entries=unpack_entries(blob, count),
            )
        except Exception as exc:
            raise CorruptStoreError(
                f"campaign store {self.path!r} holds an undecodable "
                f"seed: {exc}"
            ) from exc

    def _decode_coverage(self, text: str) -> CoverageMap:
        try:
            return CoverageMap.from_json(text)
        except Exception as exc:
            raise CorruptStoreError(
                f"campaign store {self.path!r} holds an undecodable "
                f"coverage map: {exc}"
            ) from exc

    def coverage_frontier(self) -> CoverageMap:
        """Cumulative coverage up to the last committed wave."""
        if self.last_completed_wave() is None:
            return CoverageMap()
        rows = self._query(
            "SELECT coverage FROM coverage_frontier "
            "ORDER BY wave_index DESC LIMIT 1"
        )
        if not rows:
            raise CorruptStoreError(
                f"campaign store {self.path!r} has waves but no "
                "coverage frontier"
            )
        return self._decode_coverage(rows[0][0])

    def failure_records(self) -> list[FailureRecord]:
        """Every stored failure, in (cell, position) order."""
        records: list[FailureRecord] = []
        for failures in self._iter_failures():
            records.extend(failures)
        return records

    def _iter_failures(self) -> Iterator[list[FailureRecord]]:
        by_cell: dict[int, list[FailureRecord]] = {}
        for row in self._query(
            "SELECT cell_index, kind, cause, crash_reason, "
            "mutation_index, exit_reason, entry_count, entries, "
            "log_tail FROM failures ORDER BY cell_index, position"
        ):
            by_cell.setdefault(row[0], []).append(FailureRecord(
                kind=FailureKind(row[1]),
                cause=row[2],
                crash_reason=row[3],
                mutation_index=row[4],
                seed=self._decode_seed(row[5], row[7], row[6]),
                log_tail=tuple(json.loads(row[8])),
            ))
        for cell_index in sorted(by_cell):
            yield by_cell[cell_index]

    def corpus(self) -> Corpus:
        """Canonical union of every stored cell's corpus."""
        return Corpus.merge_all(
            result.corpus for result in self.load_results().values()
        )

    def divergence_records(self) -> list[DivergenceRecord]:
        """Every stored divergence, in (cell, position) order."""
        return [
            DivergenceRecord(
                kind=DivergenceKind(row[1]),
                mutation_index=row[2],
                vmx_outcome=row[3],
                svm_outcome=row[4],
                detail=row[5],
                seed=self._decode_seed(row[6], row[8], row[7]),
            )
            for row in self._query(
                "SELECT cell_index, kind, mutation_index, "
                "vmx_outcome, svm_outcome, detail, exit_reason, "
                "entry_count, entries FROM divergences "
                "ORDER BY cell_index, position"
            )
        ]

    # -- integrity -----------------------------------------------------

    def validate(self) -> None:
        """Fail loudly on any structural damage; never guess.

        Checks, in order: SQLite page-level integrity, schema
        completeness, wave contiguity, cell/wave cross-references,
        frontier consistency (the last frontier must equal the union
        of every stored cell's coverage), and divergence-row
        authenticity (each stored signature must match one recomputed
        from the row's own fields — a tampered row cannot keep its
        signature honest).
        """
        rows = self._query("PRAGMA integrity_check")
        verdict = rows[0][0] if rows else "missing"
        if verdict != "ok":
            raise CorruptStoreError(
                f"campaign store {self.path!r} failed SQLite "
                f"integrity check: {verdict}"
            )
        have = {
            row[0] for row in self._query(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        missing = [t for t in _TABLES if t not in have]
        if missing:
            raise CorruptStoreError(
                f"campaign store {self.path!r} is missing tables: "
                f"{', '.join(missing)}"
            )
        self._check_schema_version()
        waves = self.completed_waves()
        if [w.wave_index for w in waves] != list(range(len(waves))):
            raise CorruptStoreError(
                f"campaign store {self.path!r} has non-contiguous "
                f"waves: {[w.wave_index for w in waves]}"
            )
        expected_cells: set[int] = set()
        for wave in waves:
            expected_cells.update(
                set(wave.cell_indices) - set(wave.abandoned)
            )
        stored_cells = {
            row[0] for row in self._query(
                "SELECT cell_index FROM cells"
            )
        }
        if stored_cells != expected_cells:
            raise CorruptStoreError(
                f"campaign store {self.path!r} cell results disagree "
                f"with its wave log: waves expect "
                f"{sorted(expected_cells)}, cells hold "
                f"{sorted(stored_cells)}"
            )
        frontier_waves = [
            row[0] for row in self._query(
                "SELECT wave_index FROM coverage_frontier "
                "ORDER BY wave_index"
            )
        ]
        if frontier_waves != [w.wave_index for w in waves]:
            raise CorruptStoreError(
                f"campaign store {self.path!r} frontier log disagrees "
                f"with its wave log"
            )
        if waves:
            union = CoverageMap.union_all(
                self._decode_coverage(row[0])
                for row in self._query(
                    "SELECT new_lines FROM cells"
                )
            )
            if self.coverage_frontier().lines() != union.lines():
                raise CorruptStoreError(
                    f"campaign store {self.path!r} coverage frontier "
                    "does not match the union of its cell coverage"
                )
        for row in self._query(
            "SELECT cell_index, position, kind, mutation_index, "
            "vmx_outcome, svm_outcome, detail, exit_reason, "
            "entry_count, entries, signature FROM divergences "
            "ORDER BY cell_index, position"
        ):
            try:
                record = DivergenceRecord(
                    kind=DivergenceKind(row[2]),
                    mutation_index=row[3],
                    vmx_outcome=row[4],
                    svm_outcome=row[5],
                    detail=row[6],
                    seed=self._decode_seed(row[7], row[9], row[8]),
                )
            except CorruptStoreError:
                raise
            except Exception as exc:
                raise CorruptStoreError(
                    f"campaign store {self.path!r} divergence row "
                    f"(cell {row[0]}, position {row[1]}) is "
                    f"undecodable: {exc}"
                ) from exc
            if divergence_signature(record) != row[10]:
                raise CorruptStoreError(
                    f"campaign store {self.path!r} divergence row "
                    f"(cell {row[0]}, position {row[1]}) does not "
                    "match its stored signature: the row was altered "
                    "after checkpoint"
                )
