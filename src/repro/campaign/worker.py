"""The ``iris-worker`` entrypoint: a socket-attached shard worker.

One worker process serves shard tasks over the wire protocol
(:mod:`repro.campaign.wire`).  A controller connects, primes the
session with a HELLO (campaign identity + pickled trace/snapshot),
then streams TASK frames; the worker runs each shard through the same
hermetic :func:`repro.fuzz.parallel._execute_task` path the local pool
uses — which is the whole point: a shard's outcome is a pure function
of the task plus the primed context, so *where* it runs is invisible
in the merged campaign.

While a shard runs, the worker emits HEARTBEAT frames so the
controller can tell a slow shard from a dead worker.  Worker-side
failures never travel as exceptions: ``_execute_task`` converts them
into error outcomes, exactly as on the local pool's stats channel.

Chaos hooks (tests only)
------------------------

``--chaos KIND:N`` sabotages the worker for the fault-injection suite:

* ``die-after-results:N`` — hard-exit the process (``os._exit``) right
  after the N-th RESULT frame, simulating a worker killed mid-wave.
  Honored only when the server is allowed to exit (the CLI path);
  an in-thread test server refuses it at construction.
* ``drop-mid-result:N`` — send only half of the N-th RESULT frame and
  sever the connection, simulating a link dying mid-frame.  Fires
  once; the server keeps accepting, so the controller's reconnect
  path can prove the shard is re-run (not double-merged).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
from dataclasses import dataclass

from repro.campaign import wire
from repro.core.seed import Trace
from repro.core.snapshot import VmSnapshot
from repro.errors import TransportProtocolError
from repro.fuzz.parallel import ShardOutcome, ShardTask, _execute_task

_CHAOS_KINDS = ("die-after-results", "drop-mid-result")


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed ``KIND:N`` sabotage instruction."""

    kind: str
    threshold: int

    @classmethod
    def parse(cls, spec: str) -> "ChaosSpec":
        kind, sep, count_text = spec.partition(":")
        if not sep or kind not in _CHAOS_KINDS:
            raise ValueError(
                f"chaos spec {spec!r} is not KIND:N with KIND in "
                f"{_CHAOS_KINDS}"
            )
        try:
            threshold = int(count_text)
        except ValueError:
            raise ValueError(
                f"chaos spec {spec!r} has a non-numeric count"
            ) from None
        if threshold < 1:
            raise ValueError("chaos count must be >= 1")
        return cls(kind=kind, threshold=threshold)


class _DropConnection(Exception):
    """Internal: the chaos hook severed this connection on purpose."""


class WorkerServer:
    """Serve shard tasks to any number of controller connections.

    Binds immediately on :meth:`start` (``port=0`` asks the OS for a
    free port — the assigned one is in :attr:`port`, so tests never
    race on a fixed number) and handles each connection on its own
    daemon thread.  ``heartbeat_interval`` paces liveness frames while
    a shard runs; it must be comfortably below the controller's
    ``heartbeat_timeout``.

    Shard execution is serialized process-wide (one shard at a time
    across every server and connection in this process): the hermetic
    per-shard metrics capture swaps the process-global observability
    state, and overlapping installs from sibling threads would race
    its save/restore.  Heartbeats keep flowing while a shard waits
    for its turn, so the controller sees a busy worker, not a dead
    one.
    """

    #: Process-wide shard serialization (see the class docstring).
    _EXEC_LOCK = threading.Lock()

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_interval: float = 0.5,
        chaos: ChaosSpec | None = None,
        allow_exit: bool = False,
    ) -> None:
        if (
            chaos is not None
            and chaos.kind == "die-after-results"
            and not allow_exit
        ):
            raise ValueError(
                "die-after-results chaos hard-exits the process; it "
                "is only valid for a dedicated iris-worker process "
                "(allow_exit=True), never an in-process server"
            )
        self.host = host
        self.port = port
        self.heartbeat_interval = heartbeat_interval
        self.chaos = chaos
        self._allow_exit = allow_exit
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = False
        self._lock = threading.Lock()
        self._results_sent = 0
        self._chaos_fired = False
        self._connections: set[socket.socket] = set()
        #: Ledger of every shard this server ran, as
        #: ``(cell_index, shard_index, attempt)`` in execution order.
        #: The fault-injection tests read it to prove a reassigned
        #: shard ran exactly once more — never zero, never twice.
        self.executed: list[tuple[int, int, int]] = []

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerServer":
        """Bind, record the assigned port, and serve in the background."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"iris-worker-accept-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def join(self) -> None:
        """Block until the server is stopped (the CLI's steady state)."""
        if self._accept_thread is not None:
            self._accept_thread.join()

    def stop(self) -> None:
        """Stop accepting and sever every live connection (idempotent)."""
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        if (
            self._accept_thread is not None
            and self._accept_thread is not threading.current_thread()
        ):
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def address(self) -> str:
        """``host:port`` with the *assigned* port, fixture-ready."""
        return f"{self.host}:{self.port}"

    # -- serving -------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with self._lock:
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"iris-worker-conn-{self.port}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            self._session(conn)
        except (TransportProtocolError, _DropConnection, OSError):
            # A broken peer (or our own chaos hook) only costs this
            # connection; the accept loop keeps serving.
            pass
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _session(self, conn: socket.socket) -> None:
        frame = wire.recv_frame(conn)
        if frame is None:
            return
        kind, payload, _ = frame
        if kind is not wire.FrameKind.HELLO:
            raise TransportProtocolError(
                f"session opened with {kind.name}, expected HELLO"
            )
        identity, trace, snapshot = wire.decode_hello(payload)
        wire.send_frame(
            conn, wire.FrameKind.HELLO_ACK,
            wire.encode_hello_ack(os.getpid()),
        )
        del identity  # campaign coordinates; informational only
        while True:
            frame = wire.recv_frame(conn)
            if frame is None:
                return
            kind, payload, _ = frame
            if kind is wire.FrameKind.BYE:
                return
            if kind is not wire.FrameKind.TASK:
                raise TransportProtocolError(
                    f"unexpected {kind.name} frame mid-session"
                )
            task = wire.decode_task(payload)
            with self._lock:
                self.executed.append(
                    (task.cell_index, task.shard_index, task.attempt)
                )
            outcome = self._run_with_heartbeats(
                conn, task, trace, snapshot
            )
            self._send_result(conn, outcome)

    def _run_with_heartbeats(
        self,
        conn: socket.socket,
        task: ShardTask,
        trace: Trace,
        snapshot: VmSnapshot | None,
    ) -> ShardOutcome:
        """Execute on a side thread, heartbeating until it finishes."""
        box: dict[str, ShardOutcome] = {}
        done = threading.Event()

        def runner() -> None:
            try:
                with WorkerServer._EXEC_LOCK:
                    box["outcome"] = _execute_task(
                        task, trace, snapshot
                    )
            finally:
                done.set()

        thread = threading.Thread(
            target=runner, name="iris-worker-shard", daemon=True
        )
        thread.start()
        while not done.wait(self.heartbeat_interval):
            wire.send_frame(conn, wire.FrameKind.HEARTBEAT, b"")
        outcome = box.get("outcome")
        if outcome is None:
            # The runner thread died outside _execute_task's net
            # (e.g. MemoryError); surface it as an error outcome.
            outcome = ShardOutcome(
                cell_index=task.cell_index,
                shard_index=task.shard_index,
                attempt=task.attempt,
                error="worker shard thread died without an outcome",
                worker_pid=os.getpid(),
            )
        return outcome

    def _send_result(
        self, conn: socket.socket, outcome: ShardOutcome
    ) -> None:
        payload = wire.encode_outcome(outcome)
        with self._lock:
            self._results_sent += 1
            ordinal = self._results_sent
        chaos = self.chaos
        if (
            chaos is not None
            and chaos.kind == "drop-mid-result"
            and ordinal == chaos.threshold
            and not self._chaos_fired
        ):
            self._chaos_fired = True
            frame = wire.encode_frame(wire.FrameKind.RESULT, payload)
            conn.sendall(frame[: max(len(frame) // 2, 1)])
            raise _DropConnection()
        wire.send_frame(conn, wire.FrameKind.RESULT, payload)
        if (
            chaos is not None
            and chaos.kind == "die-after-results"
            and ordinal >= chaos.threshold
        ):
            # A real kill, not an exception: nothing gets to flush,
            # close, or wave goodbye — the controller must cope.
            os._exit(17)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="iris-worker",
        description=(
            "Serve IRIS campaign shards over the worker wire "
            "protocol (connect with iris-fuzz --workers host:port)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: %(default)s)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="port to bind; 0 asks the OS for a free one "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.5,
        metavar="SECONDS",
        help="pace of liveness frames while a shard runs "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--chaos", type=ChaosSpec.parse, default=None,
        metavar="KIND:N",
        help="fault-injection hook for the transport test suite: "
             "die-after-results:N or drop-mid-result:N",
    )
    args = parser.parse_args(argv)
    server = WorkerServer(
        host=args.host,
        port=args.port,
        heartbeat_interval=args.heartbeat_interval,
        chaos=args.chaos,
        allow_exit=True,
    )
    server.start()
    # The one line a launcher needs: the assigned address.
    print(
        f"iris-worker listening on {server.address}",
        flush=True,
    )
    try:
        server.join()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
