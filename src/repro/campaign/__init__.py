"""Persistent, resumable campaign control plane (DESIGN.md §10).

Public surface:

* :class:`CampaignStore` — SQLite-backed, schema-versioned persistence
  with transactional per-wave checkpoints.
* :class:`CampaignController` — wave scheduling over the warm
  :class:`repro.fuzz.parallel.ParallelCampaign` pool, with exact
  resume from a store.
* :class:`CampaignConfig` — the campaign's deterministic identity.
"""

from repro.campaign.controller import (
    CampaignController,
    CampaignInterrupted,
    ControlledCampaignResult,
    plan_waves,
)
from repro.campaign.store import (
    SCHEMA_VERSION,
    CampaignConfig,
    CampaignStore,
    StoredWave,
)

__all__ = [
    "SCHEMA_VERSION",
    "CampaignConfig",
    "CampaignController",
    "CampaignInterrupted",
    "CampaignStore",
    "ControlledCampaignResult",
    "StoredWave",
    "plan_waves",
]
