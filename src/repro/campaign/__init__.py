"""Persistent, resumable campaign control plane (DESIGN.md §10).

Public surface:

* :class:`CampaignStore` — SQLite-backed, schema-versioned persistence
  with transactional per-wave checkpoints.
* :class:`CampaignController` — wave scheduling over the warm
  :class:`repro.fuzz.parallel.ParallelCampaign` pool, with exact
  resume from a store.
* :class:`CampaignConfig` — the campaign's deterministic identity.
* :class:`WorkerTransport` and its implementations
  (:class:`LocalPoolTransport`, :class:`SocketTransport`) — *where*
  the engine's shards run (DESIGN.md §11).
* :class:`WorkerServer` — the ``iris-worker`` side of the socket
  transport.
"""

from repro.campaign.controller import (
    CampaignController,
    CampaignInterrupted,
    ControlledCampaignResult,
    plan_waves,
)
from repro.campaign.store import (
    SCHEMA_VERSION,
    CampaignConfig,
    CampaignStore,
    StoredWave,
)
from repro.campaign.transport import (
    LocalPoolTransport,
    SocketTransport,
    TransportContext,
    TransportStats,
    WorkerTransport,
    parse_worker_address,
)
from repro.campaign.worker import ChaosSpec, WorkerServer

__all__ = [
    "SCHEMA_VERSION",
    "CampaignConfig",
    "CampaignController",
    "CampaignInterrupted",
    "CampaignStore",
    "ChaosSpec",
    "ControlledCampaignResult",
    "LocalPoolTransport",
    "SocketTransport",
    "StoredWave",
    "TransportContext",
    "TransportStats",
    "WorkerServer",
    "WorkerTransport",
    "parse_worker_address",
    "plan_waves",
]
