"""Campaign controller: wave scheduling over the parallel engine.

The control plane the ROADMAP asks for: instead of one monolithic
:meth:`ParallelCampaign.run`, the controller partitions the campaign's
cells into fixed-size **waves**, runs each wave on the engine's warm
worker pool, and (when given a :class:`CampaignStore`) checkpoints the
wave transactionally before moving on.  A later run pointed at the
same store with ``resume=True`` reloads every committed wave and
continues from the first uncommitted one.

Why resume is exact
-------------------

Three properties, each pinned by its own test suite, compose:

1. Shard RNG seeds are derived from *campaign* coordinates
   (:func:`repro.fuzz.parallel.derive_shard_seed`), never from wave
   membership, worker identity, or wall time — so wave ``k`` of a
   resumed campaign performs bit-identical work to wave ``k`` of an
   uninterrupted one.
2. Merges are order-insensitive and associative
   (:meth:`FuzzResult.merge`, :meth:`Corpus.merge`,
   :meth:`CoverageMap.union`, :meth:`MetricsSnapshot.merge`) — so
   splicing reloaded waves together with freshly run ones lands on the
   same merged output as running everything in one go.
3. The store round-trips every artifact exactly (the Hypothesis
   property suite) — so a reloaded wave *is* the wave that was saved.

Hence the headline differential test: kill after any wave, resume,
and the final corpus, coverage, failures, and metrics snapshot are
byte-identical to the uninterrupted run's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import IrisError, StoreMismatchError
from repro.campaign.store import CampaignConfig, CampaignStore
from repro.fuzz.fuzzer import FuzzResult
from repro.fuzz.parallel import (
    CampaignResult,
    CampaignStats,
    ParallelCampaign,
    WaveOutcome,
)
from repro.obs import OBS, MetricsSnapshot


class CampaignInterrupted(IrisError):
    """The campaign stopped after a wave boundary (fault injection).

    Raised by the ``crash_after_wave`` hook *after* that wave's
    checkpoint committed — the closest a test can get to a process
    death between waves without actually killing the interpreter.
    """

    def __init__(self, wave_index: int) -> None:
        super().__init__(
            f"campaign interrupted after wave {wave_index}"
        )
        self.wave_index = wave_index


@dataclass
class ControlledCampaignResult(CampaignResult):
    """A :class:`CampaignResult` plus control-plane bookkeeping."""

    #: Total waves in the campaign's plan.
    waves_total: int = 0
    #: Waves reloaded from the store rather than executed.
    waves_resumed: int = 0


def plan_waves(n_cells: int, wave_size: int) -> list[list[int]]:
    """Partition cell indices into consecutive fixed-size waves.

    Purely cosmetic for results (cells are independent and merges are
    associative) but load-bearing for resume: the wave index recorded
    in the store maps back to cell sets through this function, so it
    must stay deterministic in ``(n_cells, wave_size)``.
    """
    if wave_size < 1:
        raise ValueError("wave_size must be >= 1")
    return [
        list(range(start, min(start + wave_size, n_cells)))
        for start in range(0, n_cells, wave_size)
    ]


class CampaignController:
    """Drive a :class:`ParallelCampaign` wave by wave, checkpointing.

    Without a store this is a pure re-chunking of
    :meth:`ParallelCampaign.run` and produces the identical merged
    result (the equivalence test pins this).  With a store, each wave
    commits before the next starts, and :meth:`run` with
    ``resume=True`` continues a previously interrupted campaign.
    """

    def __init__(
        self,
        engine: ParallelCampaign,
        store: CampaignStore | None = None,
        *,
        wave_size: int = 1,
        config_extra: tuple[tuple[str, str], ...] = (),
        crash_after_wave: int | None = None,
    ) -> None:
        self.engine = engine
        self.store = store
        self.wave_size = wave_size
        self.config_extra = tuple(sorted(config_extra))
        #: Fault-injection hook: abort (after checkpointing) once the
        #: given wave index has committed, simulating a process death
        #: at a wave boundary.
        self.crash_after_wave = crash_after_wave

    def config(self) -> CampaignConfig:
        """This campaign's deterministic identity (what the store pins)."""
        return CampaignConfig(
            campaign_seed=self.engine.campaign_seed,
            n_cells=len(self.engine.cases),
            shards_per_cell=self.engine.shards_per_cell,
            wave_size=self.wave_size,
            arch=self.engine.arch,
            fast_reset=self.engine.fast_reset,
            collect_metrics=self.engine.collect_metrics,
            differential=self.engine.differential,
            engine=self.engine.engine,
            extra=self.config_extra,
        )

    def run(self, *, resume: bool = False) -> ControlledCampaignResult:
        started = time.perf_counter()
        waves = plan_waves(len(self.engine.cases), self.wave_size)
        start_wave = self._prepare_store(resume, len(waves))
        # Results are transport-independent (the differential suite
        # pins byte-identity local vs socket), so the transport is
        # pure observability here: say where the waves will run.
        transport = self.engine.transport()
        OBS.tracer.event(
            "iris.campaign.transport", transport=transport.describe(),
        )

        results: dict[int, FuzzResult] = {}
        abandoned: list[int] = []
        wave_metrics: list[MetricsSnapshot] = []
        stats = CampaignStats(jobs=self.engine.jobs)

        if start_wave:
            assert self.store is not None
            results.update(self.store.load_results())
            for stored in self.store.completed_waves():
                abandoned.extend(stored.abandoned)
                if stored.metrics is not None:
                    wave_metrics.append(stored.metrics)
            OBS.metrics.inc(
                "campaign_waves_resumed", value=start_wave,
            )
            OBS.tracer.event(
                "iris.campaign.resume",
                waves_resumed=start_wave,
                waves_total=len(waves),
            )

        try:
            for wave_index in range(start_wave, len(waves)):
                cell_indices = waves[wave_index]
                with OBS.tracer.span(
                    "iris.campaign.wave",
                    wave=wave_index, cells=len(cell_indices),
                ):
                    outcome = self.engine.run_wave(cell_indices)
                self._absorb(outcome, results, abandoned,
                             wave_metrics, stats)
                if self.store is not None:
                    self.store.checkpoint_wave(
                        wave_index, cell_indices, outcome,
                    )
                    OBS.metrics.inc("campaign_checkpoints")
                if self.crash_after_wave == wave_index:
                    raise CampaignInterrupted(wave_index)
        finally:
            self.engine.close()
            OBS.tracer.event(
                "iris.campaign.transport-stats",
                transport=transport.describe(),
                **vars(transport.stats),
            )

        stats.wall_seconds = time.perf_counter() - started
        return ControlledCampaignResult(
            results=[results[i] for i in sorted(results)],
            stats=stats,
            abandoned_cells=sorted(abandoned),
            metrics=(
                MetricsSnapshot.merge_all(wave_metrics)
                if self.engine.collect_metrics else None
            ),
            waves_total=len(waves),
            waves_resumed=start_wave,
        )

    def _absorb(
        self,
        outcome: WaveOutcome,
        results: dict[int, FuzzResult],
        abandoned: list[int],
        wave_metrics: list[MetricsSnapshot],
        stats: CampaignStats,
    ) -> None:
        results.update(outcome.results)
        abandoned.extend(outcome.abandoned)
        if outcome.metrics is not None:
            wave_metrics.append(outcome.metrics)
        stats.shards.extend(outcome.shard_stats)
        stats.faults.extend(outcome.faults)

    def _prepare_store(self, resume: bool, n_waves: int) -> int:
        """Initialize or reconcile the store; return the start wave."""
        if self.store is None:
            return 0
        if not self.store.initialized:
            if resume:
                raise StoreMismatchError(
                    f"campaign store {self.store.path!r} holds no "
                    "campaign to resume"
                )
            self.store.initialize(self.config())
            return 0
        if not resume:
            raise StoreMismatchError(
                f"campaign store {self.store.path!r} already holds a "
                "campaign; pass resume to continue it"
            )
        stored = self.store.config()
        mine = self.config()
        if stored != mine:
            raise StoreMismatchError(
                "resume refused: stored campaign identity disagrees "
                f"with the request ({stored.describe_diff(mine)})"
            )
        self.store.validate()
        last = self.store.last_completed_wave()
        start = 0 if last is None else last + 1
        if start > n_waves:
            raise StoreMismatchError(
                f"store has {start} completed waves but the campaign "
                f"plan only has {n_waves}"
            )
        return start
